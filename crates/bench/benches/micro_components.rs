//! Micro-benchmarks of the substrates: SHA-256 hashing, block construction,
//! ledger append and transaction execution.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sharper_common::{AccountId, ClientId, ClusterId};
use sharper_crypto::Sha256;
use sharper_ledger::{Block, LedgerView};
use sharper_state::{Executor, Partitioner, Transaction};
use std::collections::BTreeMap;

fn micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let data = vec![0xabu8; 1024];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256_1kib", |b| b.iter(|| Sha256::digest(&data)));
    group.throughput(Throughput::Elements(1));

    group.bench_function("block_construction", |b| {
        let tx = Transaction::transfer(ClientId(1), 0, AccountId(1), AccountId(2), 5);
        let genesis = Block::genesis().digest();
        b.iter(|| {
            let mut parents = BTreeMap::new();
            parents.insert(ClusterId(0), genesis);
            Block::transaction(tx.clone(), parents)
        })
    });

    group.bench_function("ledger_append_1000", |b| {
        b.iter(|| {
            let mut view = LedgerView::new(ClusterId(0));
            for seq in 0..1000u64 {
                let tx = Transaction::transfer(ClientId(1), seq, AccountId(1), AccountId(2), 1);
                let mut parents = BTreeMap::new();
                parents.insert(ClusterId(0), view.head());
                view.append(Block::transaction(tx, parents)).unwrap();
            }
            view.committed_count()
        })
    });

    group.bench_function("execute_transfer", |b| {
        let executor = Executor::new(ClusterId(0), Partitioner::range(4, 1000));
        let mut store = executor.genesis_store(1000, 1_000_000, ClientId);
        let tx = Transaction::transfer(ClientId(1), 0, AccountId(1), AccountId(2), 1);
        b.iter(|| executor.apply(&mut store, &tx))
    });

    group.finish();
}

criterion_group!(benches, micro);
criterion_main!(benches);
