//! Micro-benchmarks of the substrates: SHA-256 hashing, block construction,
//! ledger append, transaction execution and the zero-copy message plane.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sharper_common::{AccountId, ClientId, ClusterId, NodeId, SimTime};
use sharper_consensus::Msg;
use sharper_crypto::{Digest, Sha256, Signature};
use sharper_ledger::{Block, LedgerView};
use sharper_net::{ActorId, Context};
use sharper_state::{Executor, Operation, Partitioner, Transaction};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A transaction with `ops` transfer operations (its serialised size grows
/// linearly with `ops`).
fn tx_with_ops(ops: usize) -> Transaction {
    let operations = (0..ops)
        .map(|i| Operation::Transfer {
            from: AccountId(1),
            to: AccountId(2 + i as u64),
            amount: 1,
        })
        .collect();
    Transaction::new(sharper_common::TxId::new(ClientId(1), 0), operations)
}

/// Broadcast fan-out: cloning a consensus message must be O(1) in payload
/// size (an `Arc` bump), and batching a 100-peer broadcast must not copy the
/// payload at all. Compare the `msg_clone_*` series across payload sizes —
/// the times should be flat — and against `tx_deep_clone_*`, which shows the
/// per-recipient cost the old message plane paid.
fn message_plane(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_plane");
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(200));

    for ops in [1usize, 64, 4096] {
        let msg = Msg::PrePrepare {
            view: 0,
            parent: Digest::ZERO,
            batch: sharper_ledger::Batch::single(tx_with_ops(ops)),
            sig: Signature::unsigned(0),
        };
        group.bench_function(format!("msg_clone_{ops}_ops"), |b| {
            b.iter(|| black_box(msg.clone()))
        });
        let tx = tx_with_ops(ops);
        group.bench_function(format!("tx_deep_clone_{ops}_ops"), |b| {
            b.iter(|| black_box(tx.clone()))
        });
        group.bench_function(format!("broadcast_100_peers_{ops}_ops"), |b| {
            let recipients: Vec<ActorId> = (0..100).map(|n| ActorId::Node(NodeId(n))).collect();
            b.iter(|| {
                let mut ctx: Context<Msg> =
                    Context::detached(SimTime::ZERO, ActorId::Node(NodeId(200)));
                ctx.broadcast(recipients.clone(), msg.clone());
                black_box(ctx.outbox_len())
            })
        });
    }
    group.finish();
}

fn micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let data = vec![0xabu8; 1024];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256_1kib", |b| b.iter(|| Sha256::digest(&data)));
    group.throughput(Throughput::Elements(1));

    group.bench_function("block_construction", |b| {
        let tx = Transaction::transfer(ClientId(1), 0, AccountId(1), AccountId(2), 5);
        let genesis = Block::genesis().digest();
        b.iter(|| {
            let mut parents = BTreeMap::new();
            parents.insert(ClusterId(0), genesis);
            Block::transaction(tx.clone(), parents)
        })
    });

    group.bench_function("ledger_append_1000", |b| {
        b.iter(|| {
            let mut view = LedgerView::new(ClusterId(0));
            for seq in 0..1000u64 {
                let tx = Transaction::transfer(ClientId(1), seq, AccountId(1), AccountId(2), 1);
                let mut parents = BTreeMap::new();
                parents.insert(ClusterId(0), view.head());
                view.append(Block::transaction(tx, parents)).unwrap();
            }
            view.committed_count()
        })
    });

    // Digest amortisation: constructing one 16-transaction batch block vs
    // 16 single-transaction blocks. The batch block hashes 16 leaf digests
    // plus one root into the block digest instead of 16 full block digests.
    group.bench_function("block_construction_batch16", |b| {
        let txs: Vec<Arc<Transaction>> = (0..16)
            .map(|seq| {
                Arc::new(Transaction::transfer(
                    ClientId(1),
                    seq,
                    AccountId(1),
                    AccountId(2),
                    5,
                ))
            })
            .collect();
        let genesis = Block::genesis().digest();
        b.iter(|| {
            let mut parents = BTreeMap::new();
            parents.insert(ClusterId(0), genesis);
            Block::batch(sharper_ledger::Batch::new(txs.clone()), parents)
        })
    });

    group.bench_function("execute_transfer", |b| {
        let executor = Executor::new(ClusterId(0), Partitioner::range(4, 1000));
        let mut store = executor.genesis_store(1000, 1_000_000, ClientId);
        let tx = Transaction::transfer(ClientId(1), 0, AccountId(1), AccountId(2), 1);
        b.iter(|| executor.apply(&mut store, &tx))
    });

    group.finish();
}

criterion_group!(benches, micro, message_plane);
criterion_main!(benches);
