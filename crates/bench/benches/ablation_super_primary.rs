//! Ablation A1: SharPer with and without the super-primary initiation policy
//! under a cross-shard-heavy workload (conflicts vs. no conflicts, §3.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sharper_bench::{sharper_point, sharper_point_no_super_primary};
use sharper_common::{FailureModel, SimTime};

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_super_primary");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let duration = SimTime::from_millis(800);
    for ratio in [0.2, 0.8] {
        let pct = (ratio * 100.0) as u32;
        group.bench_with_input(BenchmarkId::new("super_primary", pct), &ratio, |b, &r| {
            b.iter(|| sharper_point(FailureModel::Crash, 4, r, 8, duration))
        });
        group.bench_with_input(BenchmarkId::new("any_initiator", pct), &ratio, |b, &r| {
            b.iter(|| sharper_point_no_super_primary(FailureModel::Crash, 4, r, 8, duration))
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
