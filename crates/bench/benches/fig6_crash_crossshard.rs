//! Figure 6: throughput/latency with crash-only nodes at 0/20/80/100%
//! cross-shard transactions (SharPer, AHL-C, APR-C, FPaxos).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sharper_baselines::BaselineKind;
use sharper_bench::{baseline_point, sharper_point};
use sharper_common::{FailureModel, SimTime};

fn fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let duration = SimTime::from_millis(800);
    for ratio in [0.0, 0.2, 0.8, 1.0] {
        let pct = (ratio * 100.0) as u32;
        group.bench_with_input(BenchmarkId::new("SharPer", pct), &ratio, |b, &r| {
            b.iter(|| sharper_point(FailureModel::Crash, 4, r, 8, duration))
        });
        group.bench_with_input(BenchmarkId::new("AHL-C", pct), &ratio, |b, &r| {
            b.iter(|| baseline_point(BaselineKind::AhlC, r, 8, duration))
        });
        group.bench_with_input(BenchmarkId::new("APR-C", pct), &ratio, |b, &r| {
            b.iter(|| baseline_point(BaselineKind::AprC, r, 8, duration))
        });
        group.bench_with_input(BenchmarkId::new("FPaxos", pct), &ratio, |b, &r| {
            b.iter(|| baseline_point(BaselineKind::FPaxos, r, 8, duration))
        });
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
