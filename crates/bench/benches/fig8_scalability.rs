//! Figure 8: SharPer throughput with 2–5 clusters at 90% intra-shard load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sharper_bench::sharper_point;
use sharper_common::{FailureModel, SimTime};

fn fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let duration = SimTime::from_millis(800);
    for clusters in [2usize, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::new("crash", clusters), &clusters, |b, &n| {
            b.iter(|| sharper_point(FailureModel::Crash, n, 0.10, 4 * n, duration))
        });
        group.bench_with_input(
            BenchmarkId::new("byzantine", clusters),
            &clusters,
            |b, &n| b.iter(|| sharper_point(FailureModel::Byzantine, n, 0.10, 4 * n, duration)),
        );
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
