//! # sharper-state
//!
//! The application layer of the SharPer reproduction: the account-based data
//! model (§2.4), the accounting application used throughout the paper's
//! evaluation (§4: "a simple blockchain-based accounting application where
//! the data records are client accounts"), the partitioner that maps accounts
//! to shards, and the execution engine applied by replicas when a block
//! commits.
//!
//! The store kept by each replica holds exactly one shard (§2.2): the
//! accounts assigned to its cluster. Cross-shard transactions touch several
//! stores; each involved replica validates and applies only the operations
//! that concern accounts in its own shard.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod executor;
pub mod partition;
pub mod rwset;
pub mod scheduler;
pub mod store;
pub mod transaction;

pub use account::{Account, AccountStore};
pub use executor::{ExecutionOutcome, Executor};
pub use partition::{Partitioner, RangeMove};
pub use rwset::{OpLocality, RwSet};
pub use scheduler::{ExecPlan, PartitionedApply, C_UNITS, TX_UNITS, V_UNITS};
pub use store::{PartitionMap, PartitionedStore, StateRead, StateWrite};
pub use transaction::{HandoverEntry, Operation, Transaction};
