//! Per-transaction read/write sets and batch conflict detection.
//!
//! The executor computes, once per transaction, which of its operation
//! accounts are local to the shard and whether they are read during
//! validation (a transfer's source must be checked for ownership and
//! balance; a read operation must exist) or only written (a credit to the
//! destination account). Validation and apply both consume this summary, so
//! account → shard ownership is resolved exactly once per account on the hot
//! path, and the scheduler uses the same summary to route transactions to
//! state partitions and to detect intra-batch conflicts.

use sharper_common::AccountId;

/// Locality of one [`crate::Operation`]'s accounts, aligned with the
/// transaction's `operations` vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpLocality {
    /// A transfer: whether the debited source / credited destination account
    /// belongs to this shard.
    Transfer {
        /// The source account is local (validated and debited here).
        from_local: bool,
        /// The destination account is local (credited here).
        to_local: bool,
    },
    /// A balance read: whether the account belongs to this shard.
    Read {
        /// The read account is local (validated here).
        local: bool,
    },
    /// A resharding control operation (freeze or handover): whether this
    /// shard participates. Reshard batches always take the serial apply
    /// path, so the flag only feeds `any_local` and conflict detection.
    Reshard {
        /// This shard is the range's source or destination.
        local: bool,
    },
}

/// The local read/write footprint of one transaction on one shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RwSet {
    /// Local accounts read during validation (transfer sources, read ops).
    reads: Vec<AccountId>,
    /// Local accounts written on apply (transfer sources and destinations).
    writes: Vec<AccountId>,
    /// Per-operation locality flags, aligned with `tx.operations`.
    ops: Vec<OpLocality>,
}

impl RwSet {
    /// Builds a read/write set from per-operation locality decisions.
    pub(crate) fn from_ops(
        ops: Vec<OpLocality>,
        reads: Vec<AccountId>,
        writes: Vec<AccountId>,
    ) -> Self {
        Self { reads, writes, ops }
    }

    /// Local accounts read during validation.
    pub fn reads(&self) -> &[AccountId] {
        &self.reads
    }

    /// Local accounts written on apply.
    pub fn writes(&self) -> &[AccountId] {
        &self.writes
    }

    /// Per-operation locality, aligned with the transaction's operations.
    pub fn ops(&self) -> &[OpLocality] {
        &self.ops
    }

    /// Whether any operation touches this shard.
    pub fn any_local(&self) -> bool {
        self.ops.iter().any(|op| match op {
            OpLocality::Transfer {
                from_local,
                to_local,
            } => *from_local || *to_local,
            OpLocality::Read { local } => *local,
            OpLocality::Reshard { local } => *local,
        })
    }

    /// Whether this transaction conflicts with `other`: some account written
    /// by one is read or written by the other. Read-read sharing is not a
    /// conflict. Conflicting transactions must stay in consensus order; the
    /// scheduler's per-partition, index-ordered queues enforce exactly that.
    pub fn conflicts_with(&self, other: &RwSet) -> bool {
        let hits = |writes: &[AccountId], reads: &[AccountId], other_writes: &[AccountId]| {
            writes
                .iter()
                .any(|w| reads.contains(w) || other_writes.contains(w))
        };
        hits(&self.writes, &other.reads, &other.writes)
            || hits(&other.writes, &self.reads, &self.writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Executor, Partitioner, Transaction};
    use sharper_common::{ClientId, ClusterId, TxId};

    fn exec() -> Executor {
        Executor::new(ClusterId(0), Partitioner::range(4, 100))
    }

    fn read_tx(seq: u64, account: u64) -> Transaction {
        Transaction::new(
            TxId::new(ClientId(1), seq),
            vec![crate::Operation::Read {
                account: sharper_common::AccountId(account),
            }],
        )
    }

    #[test]
    fn transfer_rw_set_reads_source_writes_both() {
        let e = exec();
        let tx = Transaction::transfer(
            ClientId(1),
            0,
            sharper_common::AccountId(1),
            sharper_common::AccountId(2),
            10,
        );
        let rw = e.rw_set(&tx);
        assert!(rw.any_local());
        assert_eq!(rw.reads(), &[sharper_common::AccountId(1)]);
        assert_eq!(
            rw.writes(),
            &[sharper_common::AccountId(1), sharper_common::AccountId(2)]
        );
        assert_eq!(
            rw.ops(),
            &[OpLocality::Transfer {
                from_local: true,
                to_local: true,
            }]
        );
    }

    #[test]
    fn remote_accounts_are_excluded() {
        let e = exec();
        // Source in shard 1, destination local: credit-only involvement.
        let tx = Transaction::transfer(
            ClientId(1),
            0,
            sharper_common::AccountId(150),
            sharper_common::AccountId(2),
            10,
        );
        let rw = e.rw_set(&tx);
        assert!(rw.any_local());
        assert!(rw.reads().is_empty());
        assert_eq!(rw.writes(), &[sharper_common::AccountId(2)]);

        // Entirely remote: nothing local at all.
        let tx = Transaction::transfer(
            ClientId(1),
            1,
            sharper_common::AccountId(150),
            sharper_common::AccountId(250),
            10,
        );
        assert!(!e.rw_set(&tx).any_local());
    }

    #[test]
    fn read_read_is_not_a_conflict() {
        let e = exec();
        let a = e.rw_set(&read_tx(0, 5));
        let b = e.rw_set(&read_tx(1, 5));
        assert!(!a.conflicts_with(&b));
        assert!(!b.conflicts_with(&a));
    }

    #[test]
    fn write_write_and_read_write_conflict() {
        let e = exec();
        let t1 = e.rw_set(&Transaction::transfer(
            ClientId(1),
            0,
            sharper_common::AccountId(1),
            sharper_common::AccountId(2),
            10,
        ));
        let t2 = e.rw_set(&Transaction::transfer(
            ClientId(2),
            0,
            sharper_common::AccountId(3),
            sharper_common::AccountId(2),
            10,
        ));
        // Both credit account 2: write-write conflict.
        assert!(t1.conflicts_with(&t2));

        // t3 reads account 2 (balance read) while t1 writes it.
        let t3 = e.rw_set(&read_tx(1, 2));
        assert!(t1.conflicts_with(&t3));
        assert!(t3.conflicts_with(&t1));

        // Disjoint accounts: no conflict.
        let t4 = e.rw_set(&Transaction::transfer(
            ClientId(3),
            0,
            sharper_common::AccountId(40),
            sharper_common::AccountId(41),
            10,
        ));
        assert!(!t1.conflicts_with(&t4));
    }
}
