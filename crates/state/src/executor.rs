//! Validation and execution of transactions against a shard's account store.
//!
//! Replicas execute a transaction when its block commits (intra-shard: after
//! the Paxos/PBFT commit; cross-shard: after the flattened protocol's commit
//! phase, §3.2–§3.3). Each replica holds only its own shard, so for a
//! cross-shard transaction it validates and applies only the operations that
//! touch accounts of its shard; the flattened protocol's `accept` quorum from
//! every involved cluster is what guarantees the other shards do the same.

use crate::account::AccountStore;
use crate::partition::Partitioner;
use crate::rwset::{OpLocality, RwSet};
use crate::scheduler::{self, PartitionedApply};
use crate::store::{PartitionMap, PartitionedStore, StateRead, StateWrite};
use crate::transaction::{Operation, Transaction};
use serde::{Deserialize, Serialize};
use sharper_common::{ClusterId, Error, Result};

/// The result of executing a transaction on a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionOutcome {
    /// Every local operation validated and was applied.
    Applied,
    /// The transaction failed validation and was recorded as aborted; the
    /// block is still appended to the ledger (the order is decided by
    /// consensus, the application outcome is deterministic given that order).
    Aborted,
    /// No operation of the transaction touches this shard; nothing was done.
    NotLocal,
}

/// Executes transactions against one shard's [`AccountStore`].
#[derive(Debug, Clone)]
pub struct Executor {
    shard: ClusterId,
    partitioner: Partitioner,
}

impl Executor {
    /// Creates an executor for `shard`.
    pub fn new(shard: ClusterId, partitioner: Partitioner) -> Self {
        Self { shard, partitioner }
    }

    /// The shard this executor serves.
    pub fn shard(&self) -> ClusterId {
        self.shard
    }

    /// The partitioner in use.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// Computes the local read/write footprint of a transaction: which of
    /// its accounts belong to this shard, which are read during validation
    /// (transfer sources, read ops) and which are written on apply. Account
    /// → shard ownership is resolved exactly once per account here; both
    /// validation and apply consume the result instead of re-querying the
    /// partitioner per phase.
    pub fn rw_set(&self, tx: &Transaction) -> RwSet {
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        let mut ops = Vec::with_capacity(tx.operations.len());
        for op in &tx.operations {
            match op {
                Operation::Transfer { from, to, .. } => {
                    let from_local = self.partitioner.owns(self.shard, *from);
                    let to_local = self.partitioner.owns(self.shard, *to);
                    if from_local {
                        reads.push(*from);
                        writes.push(*from);
                    }
                    if to_local {
                        writes.push(*to);
                    }
                    ops.push(OpLocality::Transfer {
                        from_local,
                        to_local,
                    });
                }
                Operation::Read { account } => {
                    let local = self.partitioner.owns(self.shard, *account);
                    if local {
                        reads.push(*account);
                    }
                    ops.push(OpLocality::Read { local });
                }
                Operation::Freeze { start, .. } => {
                    // The freeze targets whichever shard currently owns the
                    // range (it is ordered intra-shard on that cluster).
                    let local = self
                        .partitioner
                        .owns(self.shard, sharper_common::AccountId(*start));
                    if local {
                        writes.push(sharper_common::AccountId(*start));
                    }
                    ops.push(OpLocality::Reshard { local });
                }
                Operation::Handover {
                    start, from, to, ..
                } => {
                    // The handover's clusters are explicit: the source gives
                    // the range up, the destination installs it, regardless
                    // of what the (possibly already bumped) map says.
                    let local = self.shard == *from || self.shard == *to;
                    if local {
                        writes.push(sharper_common::AccountId(*start));
                    }
                    ops.push(OpLocality::Reshard { local });
                }
            }
        }
        RwSet::from_ops(ops, reads, writes)
    }

    /// Validates the locally-checkable part of a transaction without
    /// modifying the store. Used when a replica receives a `propose` /
    /// `pre-prepare` and must decide whether the request "is valid"
    /// (Algorithm 1 line 7, Algorithm 2 line 7).
    pub fn validate_local(&self, store: &impl StateRead, tx: &Transaction) -> Result<()> {
        let rw = self.rw_set(tx);
        if !rw.any_local() {
            return Err(Error::InvalidTransaction {
                tx: tx.id,
                reason: format!("no operation touches shard {}", self.shard),
            });
        }
        self.validate_with(store, tx, &rw)
    }

    /// Validates a transaction against `store` using a precomputed
    /// read/write set (the locality of every account is already resolved,
    /// so this only performs the actual state reads).
    pub(crate) fn validate_with(
        &self,
        store: &impl StateRead,
        tx: &Transaction,
        rw: &RwSet,
    ) -> Result<()> {
        // An in-flight reshard freezes the moving range: client transactions
        // touching a frozen local account abort deterministically until the
        // handover commits. The reshard control transactions themselves are
        // exempt (the freeze establishes the range, the handover moves it).
        if !tx.is_reshard() {
            for a in rw.reads().iter().chain(rw.writes()) {
                if store.is_frozen(*a) {
                    return Err(Error::InvalidTransaction {
                        tx: tx.id,
                        reason: format!("account {a} is frozen by an in-flight reshard"),
                    });
                }
            }
        }
        for (op, loc) in tx.operations.iter().zip(rw.ops()) {
            match (op, loc) {
                (
                    Operation::Transfer { from, amount, .. },
                    OpLocality::Transfer {
                        from_local: true, ..
                    },
                ) => {
                    let account =
                        store
                            .account(*from)
                            .ok_or_else(|| Error::InvalidTransaction {
                                tx: tx.id,
                                reason: format!("unknown account {from}"),
                            })?;
                    if account.owner != tx.client() {
                        return Err(Error::InvalidTransaction {
                            tx: tx.id,
                            reason: format!("client {} does not own account {from}", tx.client()),
                        });
                    }
                    if account.balance < *amount {
                        return Err(Error::InvalidTransaction {
                            tx: tx.id,
                            reason: format!(
                                "insufficient balance in {from}: {} < {amount}",
                                account.balance
                            ),
                        });
                    }
                }
                (Operation::Read { account }, OpLocality::Read { local: true })
                    if !store.contains(*account) =>
                {
                    return Err(Error::InvalidTransaction {
                        tx: tx.id,
                        reason: format!("unknown account {account}"),
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Applies the local part of a committed transaction to the store.
    ///
    /// Validation failures surface as [`ExecutionOutcome::Aborted`] rather
    /// than errors: the ordering decision has already been made by consensus,
    /// and every correct replica of the shard reaches the same outcome
    /// because it applies the same transactions in the same order.
    pub fn apply(&self, store: &mut impl StateWrite, tx: &Transaction) -> ExecutionOutcome {
        let rw = self.rw_set(tx);
        self.run_full(store, tx, &rw)
    }

    /// Validates and applies a transaction whose read/write set is already
    /// computed. This is the single execution routine behind serial apply,
    /// solo partition steps and multi-partition gang steps — only the store
    /// view differs.
    pub(crate) fn run_full(
        &self,
        store: &mut impl StateWrite,
        tx: &Transaction,
        rw: &RwSet,
    ) -> ExecutionOutcome {
        if !rw.any_local() {
            return ExecutionOutcome::NotLocal;
        }
        if self.validate_with(store, tx, rw).is_err() {
            return ExecutionOutcome::Aborted;
        }
        for (op, loc) in tx.operations.iter().zip(rw.ops()) {
            match (op, loc) {
                (
                    Operation::Transfer { from, to, amount },
                    OpLocality::Transfer {
                        from_local,
                        to_local,
                    },
                ) => {
                    if *from_local {
                        // Validation above guarantees this cannot fail.
                        store
                            .debit(*from, tx.client(), *amount)
                            .expect("validated debit");
                    }
                    if *to_local {
                        if !store.contains(*to) {
                            // Transfers may create the destination account, as in
                            // the UTXO-to-account translation of the workload.
                            store.create_account(*to, tx.client(), 0);
                        }
                        store.credit(*to, *amount).expect("destination exists");
                    }
                }
                (Operation::Freeze { start, len, .. }, OpLocality::Reshard { local: true }) => {
                    store.set_frozen(*start, *len);
                }
                (
                    Operation::Handover {
                        start,
                        len,
                        from,
                        to,
                        entries,
                        ..
                    },
                    OpLocality::Reshard { local: true },
                ) => {
                    if self.shard == *from {
                        // The range leaves this shard; the freeze established
                        // at phase 1 is lifted with it.
                        for off in 0..*len {
                            store.remove_account(sharper_common::AccountId(start + off));
                        }
                        store.clear_frozen();
                    }
                    if self.shard == *to {
                        for e in entries {
                            store.create_account(
                                sharper_common::AccountId(start + e.offset),
                                e.owner,
                                e.balance,
                            );
                        }
                    }
                }
                _ => {}
            }
        }
        ExecutionOutcome::Applied
    }

    /// Runs the validate-and-write step of a split transaction against the
    /// single partition `vp` that holds every account it reads: validation
    /// plus all writes landing in `vp`, in operation order. Writes to other
    /// partitions are deferred to [`Executor::run_credit_step`].
    pub(crate) fn run_validate_step(
        &self,
        store: &mut AccountStore,
        tx: &Transaction,
        rw: &RwSet,
        map: PartitionMap,
        vp: usize,
    ) -> ExecutionOutcome {
        if self.validate_with(store, tx, rw).is_err() {
            return ExecutionOutcome::Aborted;
        }
        for (op, loc) in tx.operations.iter().zip(rw.ops()) {
            if let (
                Operation::Transfer { from, to, amount },
                OpLocality::Transfer {
                    from_local,
                    to_local,
                },
            ) = (op, loc)
            {
                if *from_local && map.partition_of(*from) == vp {
                    store
                        .debit(*from, tx.client(), *amount)
                        .expect("validated debit");
                }
                if *to_local && map.partition_of(*to) == vp {
                    if !store.contains(*to) {
                        store.create_account(*to, tx.client(), 0);
                    }
                    store.credit(*to, *amount).expect("destination exists");
                }
            }
        }
        ExecutionOutcome::Applied
    }

    /// Runs the credit half of a transaction on partition `part`: every
    /// local credit landing in `part`, in operation order. Only called once
    /// the transaction's outcome is `Applied` (its validation ran elsewhere,
    /// or it has no local validation reads at all).
    pub(crate) fn run_credit_step(
        &self,
        store: &mut AccountStore,
        tx: &Transaction,
        rw: &RwSet,
        map: PartitionMap,
        part: usize,
    ) {
        for (op, loc) in tx.operations.iter().zip(rw.ops()) {
            if let (
                Operation::Transfer { to, amount, .. },
                OpLocality::Transfer { to_local: true, .. },
            ) = (op, loc)
            {
                if map.partition_of(*to) == part {
                    if !store.contains(*to) {
                        store.create_account(*to, tx.client(), 0);
                    }
                    store.credit(*to, *amount).expect("destination exists");
                }
            }
        }
    }

    /// Applies a committed batch to the store: every transaction in batch
    /// order, as one unit of work.
    ///
    /// Atomicity here is the consensus-layer guarantee that matters: the
    /// whole batch is applied at the point its block is appended, with no
    /// other transaction interleaved, and each member transaction is itself
    /// all-or-nothing (validation precedes any mutation, so an aborting
    /// transaction leaves the store untouched while the rest of the batch
    /// still applies — the deterministic outcome every correct replica
    /// reaches from the same order).
    pub fn apply_batch(
        &self,
        store: &mut impl StateWrite,
        txs: &[std::sync::Arc<Transaction>],
    ) -> Vec<ExecutionOutcome> {
        txs.iter().map(|tx| self.apply(store, tx)).collect()
    }

    /// Applies a committed batch through the partitioned scheduler: per
    /// partition work queues, conflict-ordered steps, up to `exec_threads`
    /// workers. Outcomes (and the resulting state) are bit-identical to
    /// [`Executor::apply_batch`] in batch-index order; the returned plan
    /// statistics additionally report the schedule's critical path for the
    /// apply-path cost model.
    pub fn apply_batch_partitioned(
        &self,
        store: &mut PartitionedStore,
        txs: &[std::sync::Arc<Transaction>],
        exec_threads: usize,
    ) -> PartitionedApply {
        scheduler::execute(self, store, txs, exec_threads)
    }

    /// Snapshots the frozen range `[start, start + len)` into the handover
    /// entries a reshard's phase-2 transaction carries, in ascending offset
    /// order (deterministic across replicas holding the same state).
    pub fn snapshot_range(
        store: &impl StateRead,
        start: u64,
        len: u64,
    ) -> Vec<crate::transaction::HandoverEntry> {
        (0..len)
            .filter_map(|offset| {
                store
                    .account(sharper_common::AccountId(start + offset))
                    .map(|a| crate::transaction::HandoverEntry {
                        offset,
                        balance: a.balance,
                        owner: a.owner,
                    })
            })
            .collect()
    }

    /// Initialises a store with `accounts_per_shard` accounts for this shard,
    /// each owned by the client returned by `owner_of` and holding
    /// `initial_balance` units. Used by deployments and benchmarks.
    pub fn genesis_store(
        &self,
        accounts_per_shard: u64,
        initial_balance: u64,
        owner_of: impl Fn(u64) -> sharper_common::ClientId,
    ) -> AccountStore {
        let mut store = AccountStore::new(self.shard);
        for i in 0..accounts_per_shard {
            if let Some(account) = self.partitioner.account_in_shard(self.shard, i) {
                store.create_account(account, owner_of(i), initial_balance);
            }
        }
        store
    }

    /// Like [`Executor::genesis_store`] but split into `partitions`
    /// account-range partitions for the partitioned executor.
    pub fn genesis_partitioned(
        &self,
        partitions: usize,
        accounts_per_shard: u64,
        initial_balance: u64,
        owner_of: impl Fn(u64) -> sharper_common::ClientId,
    ) -> PartitionedStore {
        let flat = self.genesis_store(accounts_per_shard, initial_balance, owner_of);
        let chunk = PartitionedStore::chunk_for(self.partitioner.accounts_per_shard(), partitions);
        PartitionedStore::from_store(flat, partitions, chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharper_common::{AccountId, ClientId, TxId};

    fn setup() -> (Executor, AccountStore) {
        let partitioner = Partitioner::range(4, 100);
        let exec = Executor::new(ClusterId(0), partitioner);
        let store = exec.genesis_store(100, 1_000, ClientId);
        (exec, store)
    }

    #[test]
    fn genesis_store_populates_only_local_accounts() {
        let (exec, store) = setup();
        assert_eq!(store.len(), 100);
        assert_eq!(store.balance(AccountId(0)), Some(1_000));
        assert_eq!(store.balance(AccountId(99)), Some(1_000));
        assert!(!store.contains(AccountId(100)));
        assert_eq!(exec.shard(), ClusterId(0));
    }

    #[test]
    fn intra_shard_transfer_applies() {
        let (exec, mut store) = setup();
        let tx = Transaction::transfer(ClientId(1), 0, AccountId(1), AccountId(2), 250);
        assert_eq!(exec.apply(&mut store, &tx), ExecutionOutcome::Applied);
        assert_eq!(store.balance(AccountId(1)), Some(750));
        assert_eq!(store.balance(AccountId(2)), Some(1_250));
    }

    #[test]
    fn conservation_of_money_for_intra_shard_transfers() {
        let (exec, mut store) = setup();
        let before = store.total_balance();
        for seq in 0..20u64 {
            let tx = Transaction::transfer(
                ClientId(seq % 100),
                seq,
                AccountId(seq % 100),
                AccountId((seq + 1) % 100),
                seq * 3,
            );
            exec.apply(&mut store, &tx);
        }
        assert_eq!(store.total_balance(), before);
    }

    #[test]
    fn cross_shard_transfer_applies_only_local_half() {
        let (exec, mut store) = setup();
        // Account 150 lives in shard 1; this executor serves shard 0.
        let tx = Transaction::transfer(ClientId(5), 0, AccountId(5), AccountId(150), 100);
        assert_eq!(exec.apply(&mut store, &tx), ExecutionOutcome::Applied);
        assert_eq!(store.balance(AccountId(5)), Some(900));
        assert!(!store.contains(AccountId(150)), "remote account untouched");

        // The mirror executor for shard 1 applies the credit half.
        let exec1 = Executor::new(ClusterId(1), Partitioner::range(4, 100));
        let mut store1 = exec1.genesis_store(100, 1_000, ClientId);
        assert_eq!(exec1.apply(&mut store1, &tx), ExecutionOutcome::Applied);
        assert_eq!(store1.balance(AccountId(150)), Some(1_100));
    }

    #[test]
    fn invalid_transactions_abort_without_state_change() {
        let (exec, mut store) = setup();
        let before = store.clone();

        // Wrong owner (client 9 does not own account 1).
        let tx = Transaction::transfer(ClientId(9), 0, AccountId(1), AccountId(2), 10);
        assert_eq!(exec.apply(&mut store, &tx), ExecutionOutcome::Aborted);
        // Insufficient funds.
        let tx = Transaction::transfer(ClientId(1), 1, AccountId(1), AccountId(2), 10_000);
        assert_eq!(exec.apply(&mut store, &tx), ExecutionOutcome::Aborted);
        // Unknown source account local to this shard.
        let mut p = Partitioner::range(4, 100);
        p = p.with_override(AccountId(7777), ClusterId(0));
        let exec2 = Executor::new(ClusterId(0), p);
        let tx = Transaction::transfer(ClientId(1), 2, AccountId(7777), AccountId(2), 1);
        assert_eq!(exec2.apply(&mut store, &tx), ExecutionOutcome::Aborted);

        assert_eq!(store, before);
    }

    #[test]
    fn batch_application_is_in_order_and_member_atomic() {
        use std::sync::Arc;
        let (exec, mut store) = setup();
        let before_total = store.total_balance();
        // Three transfers in order; the middle one over-draws and must abort
        // without disturbing the others or leaving a partial debit behind.
        let batch = vec![
            Arc::new(Transaction::transfer(
                ClientId(1),
                0,
                AccountId(1),
                AccountId(2),
                400,
            )),
            Arc::new(Transaction::transfer(
                ClientId(1),
                1,
                AccountId(1),
                AccountId(3),
                5_000,
            )),
            Arc::new(Transaction::transfer(
                ClientId(1),
                2,
                AccountId(1),
                AccountId(4),
                600,
            )),
        ];
        let outcomes = exec.apply_batch(&mut store, &batch);
        assert_eq!(
            outcomes,
            vec![
                ExecutionOutcome::Applied,
                ExecutionOutcome::Aborted,
                ExecutionOutcome::Applied,
            ]
        );
        assert_eq!(store.balance(AccountId(1)), Some(0));
        assert_eq!(store.balance(AccountId(2)), Some(1_400));
        assert_eq!(
            store.balance(AccountId(3)),
            Some(1_000),
            "abort left no trace"
        );
        assert_eq!(store.balance(AccountId(4)), Some(1_600));
        assert_eq!(store.total_balance(), before_total);
    }

    #[test]
    fn batch_order_determines_which_member_aborts() {
        use std::sync::Arc;
        // The same two transfers succeed or abort depending on their order
        // inside the batch — order is part of the consensus decision.
        let mk = |seq, amount| {
            Arc::new(Transaction::transfer(
                ClientId(1),
                seq,
                AccountId(1),
                AccountId(2),
                amount,
            ))
        };
        let (exec, mut store_a) = setup();
        let a = exec.apply_batch(&mut store_a, &[mk(0, 900), mk(1, 200)]);
        assert_eq!(
            a,
            vec![ExecutionOutcome::Applied, ExecutionOutcome::Aborted]
        );
        let (exec, mut store_b) = setup();
        let b = exec.apply_batch(&mut store_b, &[mk(1, 200), mk(0, 900)]);
        assert_eq!(
            b,
            vec![ExecutionOutcome::Applied, ExecutionOutcome::Aborted]
        );
        assert_ne!(store_a, store_b);
    }

    #[test]
    fn non_local_transaction_is_reported_not_local() {
        let (exec, mut store) = setup();
        let tx = Transaction::transfer(ClientId(1), 0, AccountId(150), AccountId(250), 10);
        assert_eq!(exec.apply(&mut store, &tx), ExecutionOutcome::NotLocal);
    }

    #[test]
    fn validate_local_checks_ownership_funds_and_locality() {
        let (exec, store) = setup();
        let good = Transaction::transfer(ClientId(3), 0, AccountId(3), AccountId(4), 10);
        assert!(exec.validate_local(&store, &good).is_ok());

        let wrong_owner = Transaction::transfer(ClientId(4), 0, AccountId(3), AccountId(4), 10);
        assert!(exec.validate_local(&store, &wrong_owner).is_err());

        let not_local = Transaction::transfer(ClientId(3), 0, AccountId(150), AccountId(151), 10);
        assert!(exec.validate_local(&store, &not_local).is_err());

        // Credit-only involvement is local and valid (the debit side is
        // validated by the owning shard).
        let credit_only = Transaction::transfer(ClientId(3), 0, AccountId(150), AccountId(3), 10);
        assert!(exec.validate_local(&store, &credit_only).is_ok());
    }

    #[test]
    fn read_operations_validate_against_existing_accounts() {
        let (exec, store) = setup();
        let ok = Transaction::new(
            TxId::new(ClientId(1), 0),
            vec![Operation::Read {
                account: AccountId(5),
            }],
        );
        assert!(exec.validate_local(&store, &ok).is_ok());
        let missing = Transaction::new(
            TxId::new(ClientId(1), 1),
            vec![Operation::Read {
                account: AccountId(4242),
            }],
        );
        // Account 4242 maps to shard 2 under range(4,100); not local → error.
        assert!(exec.validate_local(&store, &missing).is_err());
    }

    #[test]
    fn freeze_aborts_touching_transactions_until_handover_moves_the_range() {
        use crate::transaction::HandoverEntry;
        let p = Partitioner::range(4, 100);
        let exec0 = Executor::new(ClusterId(0), p.clone());
        let exec2 = Executor::new(ClusterId(2), p.clone());
        let mut store0 = exec0.genesis_store(100, 1_000, ClientId);
        let mut store2 = exec2.genesis_store(100, 1_000, ClientId);

        // Phase 1: freeze [10, 20) on shard 0.
        let freeze = Transaction::freeze(ClientId(9_999), 0, 10, 10, 1);
        assert_eq!(exec0.apply(&mut store0, &freeze), ExecutionOutcome::Applied);
        assert!(store0.is_frozen(AccountId(10)));

        // Client traffic touching the frozen range aborts; outside it runs.
        let frozen_tx = Transaction::transfer(ClientId(10), 0, AccountId(10), AccountId(50), 1);
        assert_eq!(
            exec0.apply(&mut store0, &frozen_tx),
            ExecutionOutcome::Aborted
        );
        let credit_into_frozen =
            Transaction::transfer(ClientId(30), 0, AccountId(30), AccountId(15), 1);
        assert_eq!(
            exec0.apply(&mut store0, &credit_into_frozen),
            ExecutionOutcome::Aborted
        );
        let free_tx = Transaction::transfer(ClientId(30), 1, AccountId(30), AccountId(50), 1);
        assert_eq!(
            exec0.apply(&mut store0, &free_tx),
            ExecutionOutcome::Applied
        );

        // Phase 2: the handover moves the range to shard 2 atomically.
        let entries: Vec<HandoverEntry> = Executor::snapshot_range(&store0, 10, 10);
        assert_eq!(entries.len(), 10);
        let handover = Transaction::new(
            sharper_common::TxId::new(ClientId(9_999), 1),
            vec![Operation::Handover {
                start: 10,
                len: 10,
                from: ClusterId(0),
                to: ClusterId(2),
                epoch: 1,
                entries,
            }],
        );
        let moved: u128 = (10..20)
            .map(|i| store0.balance(AccountId(i)).unwrap() as u128)
            .sum();
        let before0 = store0.total_balance();
        let before2 = store2.total_balance();
        assert_eq!(
            exec0.apply(&mut store0, &handover),
            ExecutionOutcome::Applied
        );
        assert_eq!(
            exec2.apply(&mut store2, &handover),
            ExecutionOutcome::Applied
        );
        // Source: range gone, freeze lifted, balance reduced by the move.
        assert!(!store0.contains(AccountId(10)));
        assert!(store0.frozen_range().is_none());
        assert_eq!(store0.total_balance(), before0 - moved);
        // Destination: range installed with balances and owners intact.
        assert_eq!(store2.balance(AccountId(15)), Some(1_000));
        assert_eq!(store2.account(AccountId(15)).unwrap().owner, ClientId(15));
        assert_eq!(store2.total_balance(), before2 + moved);
    }

    #[test]
    fn transfer_to_unknown_local_destination_creates_account() {
        let partitioner = Partitioner::range(2, 10).with_override(AccountId(555), ClusterId(0));
        let exec = Executor::new(ClusterId(0), partitioner);
        let mut store = exec.genesis_store(10, 100, ClientId);
        let tx = Transaction::transfer(ClientId(1), 0, AccountId(1), AccountId(555), 30);
        assert_eq!(exec.apply(&mut store, &tx), ExecutionOutcome::Applied);
        assert_eq!(store.balance(AccountId(555)), Some(30));
    }
}
