//! The partitioned executor scheduler: per-partition work queues with an
//! atomic `Idle → Pending → Running` partition lifecycle.
//!
//! # Plan
//!
//! [`ExecPlan::build`] classifies every transaction of a committed batch by
//! the partitions its local read/write set touches:
//!
//! * **NotLocal** — nothing local; the outcome is preset.
//! * **TrivialCredits** — only credit destinations are local, nothing is
//!   read during validation: the outcome is `Applied` by construction and
//!   one credit step is queued per touched partition.
//! * **Solo** — every local account lives in one partition: one
//!   validate-and-apply step on that partition.
//! * **Split** — every *validation read* (transfer sources, read ops) lives
//!   in one partition but credits land elsewhere: a validate step on the
//!   read partition plus dependent credit steps on the others. This is the
//!   common shape for uniform transfer workloads and is what keeps the
//!   schedule's critical path short when most transfers cross partitions.
//! * **Gang** — validation reads span several partitions: one gang step is
//!   queued on every involved partition and executed atomically across all
//!   of them by the owning (minimum) partition's worker.
//!
//! # Determinism
//!
//! Each partition's queue holds its steps in batch-index order and is
//! consumed strictly head-first, so the per-account operation sequence is
//! exactly the serial apply's projection onto that partition: a validate
//! step for transaction `i` observes precisely the writes of transactions
//! `< i` on its partition (conflicting transactions stay in consensus
//! order), credit steps wait on their transaction's validation outcome, and
//! gang steps run only when every involved partition has drained all
//! earlier steps. Outcomes are merged back in batch-index order, making the
//! result — outcomes, replies, ledger digest — bit-identical to serial
//! apply regardless of worker count or interleaving.
//!
//! # Cost accounting
//!
//! The plan reports its critical path in abstract work units
//! ([`TX_UNITS`] per transaction, split [`V_UNITS`] + [`C_UNITS`] for split
//! transactions) so the apply-path benchmark can model the parallel
//! speedup; the simulation pipeline itself keeps charging the flat serial
//! batch cost so partitioning can never perturb golden seeds.

use crate::account::{Account, AccountStore};
use crate::executor::{ExecutionOutcome, Executor};
use crate::rwset::RwSet;
use crate::store::{PartitionMap, PartitionedStore, StateRead, StateWrite};
use crate::transaction::Transaction;
use sharper_common::{AccountId, ClientId, Result};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Work units of a split transaction's validate-and-write step.
pub const V_UNITS: u64 = 2;
/// Work units of a dependent credit step.
pub const C_UNITS: u64 = 1;
/// Work units of one whole transaction (solo or gang step, and the serial
/// per-transaction reference cost).
pub const TX_UNITS: u64 = V_UNITS + C_UNITS;

/// Partition lifecycle: no work left in the queue.
const IDLE: u8 = 0;
/// Partition lifecycle: work queued, no worker attached.
const PENDING: u8 = 1;
/// Partition lifecycle: a worker owns the partition's queue head.
const RUNNING: u8 = 2;

/// Outcome cell encodings for the lock-free per-transaction result slots.
const OC_UNSET: u8 = 0;
const OC_APPLIED: u8 = 1;
const OC_ABORTED: u8 = 2;
const OC_NOT_LOCAL: u8 = 3;

fn encode(outcome: ExecutionOutcome) -> u8 {
    match outcome {
        ExecutionOutcome::Applied => OC_APPLIED,
        ExecutionOutcome::Aborted => OC_ABORTED,
        ExecutionOutcome::NotLocal => OC_NOT_LOCAL,
    }
}

fn decode(cell: u8) -> ExecutionOutcome {
    match cell {
        OC_APPLIED => ExecutionOutcome::Applied,
        OC_ABORTED => ExecutionOutcome::Aborted,
        OC_NOT_LOCAL => ExecutionOutcome::NotLocal,
        _ => unreachable!("outcome cell read before it was written"),
    }
}

/// How one transaction maps onto partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TxPlan {
    NotLocal,
    TrivialCredits {
        credit_parts: Vec<usize>,
    },
    Solo {
        part: usize,
    },
    Split {
        vpart: usize,
        credit_parts: Vec<usize>,
    },
    Gang {
        parts: Vec<usize>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepKind {
    Solo,
    Validate,
    Credit,
    Gang,
}

/// One queued unit of work: transaction index + what to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Step {
    tx: usize,
    kind: StepKind,
}

/// The per-partition schedule of one committed batch.
#[derive(Debug)]
pub struct ExecPlan {
    plans: Vec<TxPlan>,
    rws: Vec<RwSet>,
    queues: Vec<Vec<Step>>,
    preset: Vec<Option<ExecutionOutcome>>,
    total_steps: usize,
    makespan_units: u64,
    serial_units: u64,
    conflict_pairs: usize,
}

impl ExecPlan {
    /// Builds the schedule for `txs` over `map`'s partitions.
    pub fn build(exec: &Executor, map: PartitionMap, txs: &[Arc<Transaction>]) -> Self {
        let nparts = map.partitions();
        let mut queues: Vec<Vec<Step>> = vec![Vec::new(); nparts];
        let mut plans = Vec::with_capacity(txs.len());
        let mut rws = Vec::with_capacity(txs.len());
        let mut preset = vec![None; txs.len()];
        for (i, tx) in txs.iter().enumerate() {
            let rw = exec.rw_set(tx);
            let mut vparts: Vec<usize> = rw.reads().iter().map(|a| map.partition_of(*a)).collect();
            vparts.sort_unstable();
            vparts.dedup();
            let mut wparts: Vec<usize> = rw.writes().iter().map(|a| map.partition_of(*a)).collect();
            wparts.sort_unstable();
            wparts.dedup();
            let plan = if !rw.any_local() {
                preset[i] = Some(ExecutionOutcome::NotLocal);
                TxPlan::NotLocal
            } else if vparts.is_empty() {
                // Nothing to validate locally: the outcome cannot be anything
                // but Applied, and the credit steps carry no dependency.
                preset[i] = Some(ExecutionOutcome::Applied);
                for &q in &wparts {
                    queues[q].push(Step {
                        tx: i,
                        kind: StepKind::Credit,
                    });
                }
                TxPlan::TrivialCredits {
                    credit_parts: wparts,
                }
            } else if vparts.len() == 1 {
                let vp = vparts[0];
                let credit_parts: Vec<usize> =
                    wparts.iter().copied().filter(|&q| q != vp).collect();
                if credit_parts.is_empty() {
                    queues[vp].push(Step {
                        tx: i,
                        kind: StepKind::Solo,
                    });
                    TxPlan::Solo { part: vp }
                } else {
                    queues[vp].push(Step {
                        tx: i,
                        kind: StepKind::Validate,
                    });
                    for &q in &credit_parts {
                        queues[q].push(Step {
                            tx: i,
                            kind: StepKind::Credit,
                        });
                    }
                    TxPlan::Split {
                        vpart: vp,
                        credit_parts,
                    }
                }
            } else {
                let mut parts = vparts;
                parts.extend_from_slice(&wparts);
                parts.sort_unstable();
                parts.dedup();
                for &q in &parts {
                    queues[q].push(Step {
                        tx: i,
                        kind: StepKind::Gang,
                    });
                }
                TxPlan::Gang { parts }
            };
            plans.push(plan);
            rws.push(rw);
        }

        // Critical path of the schedule, in work units: each partition is a
        // serial resource; split credits start after both their partition is
        // free and their validate step finished; gangs synchronise every
        // involved partition.
        let mut time = vec![0u64; nparts];
        let mut serial_units = 0u64;
        for plan in &plans {
            match plan {
                TxPlan::NotLocal => {}
                TxPlan::TrivialCredits { credit_parts } => {
                    serial_units += TX_UNITS;
                    for &q in credit_parts {
                        time[q] += C_UNITS;
                    }
                }
                TxPlan::Solo { part } => {
                    serial_units += TX_UNITS;
                    time[*part] += TX_UNITS;
                }
                TxPlan::Split {
                    vpart,
                    credit_parts,
                } => {
                    serial_units += TX_UNITS;
                    let done_v = time[*vpart] + V_UNITS;
                    time[*vpart] = done_v;
                    for &q in credit_parts {
                        time[q] = time[q].max(done_v) + C_UNITS;
                    }
                }
                TxPlan::Gang { parts } => {
                    serial_units += TX_UNITS;
                    let done = parts.iter().map(|&q| time[q]).max().unwrap_or(0) + TX_UNITS;
                    for &q in parts {
                        time[q] = done;
                    }
                }
            }
        }
        let makespan_units = time.into_iter().max().unwrap_or(0);

        let mut conflict_pairs = 0usize;
        for i in 0..rws.len() {
            for j in i + 1..rws.len() {
                if rws[i].conflicts_with(&rws[j]) {
                    conflict_pairs += 1;
                }
            }
        }

        let total_steps = queues.iter().map(Vec::len).sum();
        Self {
            plans,
            rws,
            queues,
            preset,
            total_steps,
            makespan_units,
            serial_units,
            conflict_pairs,
        }
    }

    /// Critical-path length of the schedule, in work units.
    pub fn makespan_units(&self) -> u64 {
        self.makespan_units
    }

    /// Serial reference cost of the batch ([`TX_UNITS`] per local
    /// transaction), in work units.
    pub fn serial_units(&self) -> u64 {
        self.serial_units
    }

    /// Number of conflicting transaction pairs within the batch.
    pub fn conflict_pairs(&self) -> usize {
        self.conflict_pairs
    }

    /// Number of queued steps across all partitions.
    pub fn total_steps(&self) -> usize {
        self.total_steps
    }

    /// Number of partitions with at least one queued step.
    pub fn active_partitions(&self) -> usize {
        self.queues.iter().filter(|q| !q.is_empty()).count()
    }

    /// Length of the deepest partition queue — the peak per-partition queue
    /// depth reported by the executor trace events.
    pub fn max_queue_depth(&self) -> usize {
        self.queues.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// The result of a partitioned batch apply: per-transaction outcomes in
/// batch-index order plus the plan statistics used by the apply-path cost
/// model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionedApply {
    /// Execution outcomes, in the batch's original transaction order.
    pub outcomes: Vec<ExecutionOutcome>,
    /// Critical-path length of the executed schedule, in work units.
    pub makespan_units: u64,
    /// Serial reference cost of the batch, in work units.
    pub serial_units: u64,
    /// Number of conflicting transaction pairs within the batch.
    pub conflict_pairs: usize,
    /// Steps queued across all partitions by the executed plan.
    pub total_steps: usize,
    /// Peak per-partition queue depth of the executed plan.
    pub max_queue_depth: usize,
    /// Partitions with at least one queued step.
    pub active_partitions: usize,
}

/// Executes a committed batch through the partitioned scheduler.
pub(crate) fn execute(
    exec: &Executor,
    store: &mut PartitionedStore,
    txs: &[Arc<Transaction>],
    exec_threads: usize,
) -> PartitionedApply {
    let map = store.partition_map();
    let plan = ExecPlan::build(exec, map, txs);
    let outcomes = if exec_threads > 1 && plan.active_partitions() > 1 {
        run_parallel(exec, store, txs, &plan, exec_threads)
    } else {
        run_sequential(exec, store, txs, &plan)
    };
    PartitionedApply {
        outcomes,
        makespan_units: plan.makespan_units,
        serial_units: plan.serial_units,
        conflict_pairs: plan.conflict_pairs,
        total_steps: plan.total_steps,
        max_queue_depth: plan.max_queue_depth(),
        active_partitions: plan.active_partitions(),
    }
}

/// Runs the plan on the calling thread, transaction by transaction, through
/// the same step routines the parallel runner uses.
fn run_sequential(
    exec: &Executor,
    store: &mut PartitionedStore,
    txs: &[Arc<Transaction>],
    plan: &ExecPlan,
) -> Vec<ExecutionOutcome> {
    let map = store.partition_map();
    let mut outcomes = Vec::with_capacity(txs.len());
    for (i, tx) in txs.iter().enumerate() {
        let rw = &plan.rws[i];
        let outcome = match &plan.plans[i] {
            TxPlan::NotLocal => ExecutionOutcome::NotLocal,
            TxPlan::TrivialCredits { credit_parts } => {
                for &q in credit_parts {
                    exec.run_credit_step(store.part_mut(q), tx, rw, map, q);
                }
                ExecutionOutcome::Applied
            }
            TxPlan::Solo { part } => {
                exec.run_validate_step(store.part_mut(*part), tx, rw, map, *part)
            }
            TxPlan::Split {
                vpart,
                credit_parts,
            } => {
                let outcome = exec.run_validate_step(store.part_mut(*vpart), tx, rw, map, *vpart);
                if outcome == ExecutionOutcome::Applied {
                    for &q in credit_parts {
                        exec.run_credit_step(store.part_mut(q), tx, rw, map, q);
                    }
                }
                outcome
            }
            TxPlan::Gang { .. } => exec.run_full(store, tx, rw),
        };
        outcomes.push(outcome);
    }
    outcomes
}

/// Runs the plan on up to `exec_threads` workers. Workers claim partitions
/// through the atomic `Idle → Pending → Running` lifecycle, execute runnable
/// head steps against the partition's mutex-guarded store slot, and release
/// the partition back to `Pending` (more steps queued) or `Idle` (drained).
fn run_parallel(
    exec: &Executor,
    store: &mut PartitionedStore,
    txs: &[Arc<Transaction>],
    plan: &ExecPlan,
    exec_threads: usize,
) -> Vec<ExecutionOutcome> {
    let map = store.partition_map();
    let nparts = store.partitions();
    let outcome_cells: Vec<AtomicU8> = plan
        .preset
        .iter()
        .map(|preset| AtomicU8::new(preset.map_or(OC_UNSET, encode)))
        .collect();
    let heads: Vec<AtomicUsize> = (0..nparts).map(|_| AtomicUsize::new(0)).collect();
    let remaining = AtomicUsize::new(plan.total_steps);
    let lifecycle: Vec<AtomicU8> = plan
        .queues
        .iter()
        .map(|q| AtomicU8::new(if q.is_empty() { IDLE } else { PENDING }))
        .collect();
    let slots: Vec<Mutex<&mut AccountStore>> =
        store.parts_mut().iter_mut().map(Mutex::new).collect();
    let workers = exec_threads.min(plan.active_partitions()).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                worker_loop(
                    exec,
                    txs,
                    plan,
                    map,
                    &outcome_cells,
                    &heads,
                    &remaining,
                    &lifecycle,
                    &slots,
                );
            });
        }
    });
    debug_assert_eq!(remaining.load(Ordering::Acquire), 0);
    outcome_cells
        .iter()
        .map(|cell| decode(cell.load(Ordering::Acquire)))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    exec: &Executor,
    txs: &[Arc<Transaction>],
    plan: &ExecPlan,
    map: PartitionMap,
    outcome_cells: &[AtomicU8],
    heads: &[AtomicUsize],
    remaining: &AtomicUsize,
    lifecycle: &[AtomicU8],
    slots: &[Mutex<&mut AccountStore>],
) {
    let nparts = lifecycle.len();
    while remaining.load(Ordering::Acquire) > 0 {
        let mut progressed = false;
        for p in 0..nparts {
            if lifecycle[p]
                .compare_exchange(PENDING, RUNNING, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            // This worker now owns partition p's queue head.
            loop {
                let h = heads[p].load(Ordering::Acquire);
                if h >= plan.queues[p].len() {
                    lifecycle[p].store(IDLE, Ordering::Release);
                    break;
                }
                let step = plan.queues[p][h];
                let i = step.tx;
                let tx = &txs[i];
                let rw = &plan.rws[i];
                match step.kind {
                    StepKind::Solo | StepKind::Validate => {
                        let outcome = {
                            let mut guard = slots[p].lock().expect("partition slot");
                            exec.run_validate_step(&mut guard, tx, rw, map, p)
                        };
                        outcome_cells[i].store(encode(outcome), Ordering::Release);
                        heads[p].fetch_add(1, Ordering::AcqRel);
                        remaining.fetch_sub(1, Ordering::AcqRel);
                        progressed = true;
                    }
                    StepKind::Credit => {
                        let cell = outcome_cells[i].load(Ordering::Acquire);
                        if cell == OC_UNSET {
                            // The validate step has not run yet: hand the
                            // partition back and look for other work.
                            lifecycle[p].store(PENDING, Ordering::Release);
                            break;
                        }
                        if cell == OC_APPLIED {
                            let mut guard = slots[p].lock().expect("partition slot");
                            exec.run_credit_step(&mut guard, tx, rw, map, p);
                        }
                        heads[p].fetch_add(1, Ordering::AcqRel);
                        remaining.fetch_sub(1, Ordering::AcqRel);
                        progressed = true;
                    }
                    StepKind::Gang => {
                        let parts = match &plan.plans[i] {
                            TxPlan::Gang { parts } => parts,
                            _ => unreachable!("gang step without gang plan"),
                        };
                        // The minimum involved partition owns the gang; other
                        // partitions simply wait (their head is advanced by
                        // the owner once the step ran).
                        if p != parts[0] {
                            lifecycle[p].store(PENDING, Ordering::Release);
                            break;
                        }
                        let ready = parts.iter().all(|&q| {
                            let hq = heads[q].load(Ordering::Acquire);
                            hq < plan.queues[q].len()
                                && plan.queues[q][hq]
                                    == Step {
                                        tx: i,
                                        kind: StepKind::Gang,
                                    }
                        });
                        if !ready {
                            lifecycle[p].store(PENDING, Ordering::Release);
                            break;
                        }
                        // Every involved partition has drained all earlier
                        // steps, and only this worker may execute their head
                        // steps — locking ascending is uncontended and safe.
                        {
                            let mut view = GangView::lock(map, parts, slots);
                            let outcome = exec.run_full(&mut view, tx, rw);
                            outcome_cells[i].store(encode(outcome), Ordering::Release);
                        }
                        for &q in parts {
                            heads[q].fetch_add(1, Ordering::AcqRel);
                            remaining.fetch_sub(1, Ordering::AcqRel);
                        }
                        progressed = true;
                    }
                }
            }
        }
        if !progressed {
            std::thread::yield_now();
        }
    }
}

/// A write view over the locked partitions of one gang step, routing every
/// account to its owning partition's store.
struct GangView<'guard, 'store> {
    map: PartitionMap,
    guards: Vec<(usize, MutexGuard<'guard, &'store mut AccountStore>)>,
}

impl<'guard, 'store> GangView<'guard, 'store> {
    fn lock(
        map: PartitionMap,
        parts: &[usize],
        slots: &'guard [Mutex<&'store mut AccountStore>],
    ) -> Self {
        // `parts` is sorted ascending, so lock acquisition is totally
        // ordered across any concurrent gangs.
        let guards = parts
            .iter()
            .map(|&q| (q, slots[q].lock().expect("partition slot")))
            .collect();
        Self { map, guards }
    }

    fn slot_of(&self, id: AccountId) -> Option<usize> {
        let p = self.map.partition_of(id);
        self.guards.iter().position(|(q, _)| *q == p)
    }
}

impl StateRead for GangView<'_, '_> {
    fn account(&self, id: AccountId) -> Option<&Account> {
        let idx = self.slot_of(id)?;
        self.guards[idx].1.account(id)
    }

    fn is_frozen(&self, id: AccountId) -> bool {
        self.slot_of(id)
            .is_some_and(|idx| self.guards[idx].1.is_frozen(id))
    }
}

impl StateWrite for GangView<'_, '_> {
    fn create_account(&mut self, id: AccountId, owner: ClientId, balance: u64) {
        let idx = self.slot_of(id).expect("gang partition present");
        self.guards[idx].1.create_account(id, owner, balance);
    }

    fn debit(&mut self, id: AccountId, requester: ClientId, amount: u64) -> Result<()> {
        let idx = self.slot_of(id).expect("gang partition present");
        self.guards[idx].1.debit(id, requester, amount)
    }

    fn credit(&mut self, id: AccountId, amount: u64) -> Result<()> {
        let idx = self.slot_of(id).expect("gang partition present");
        self.guards[idx].1.credit(id, amount)
    }

    // Reshard batches are forced down the serial apply path by the replica
    // (a pure function of batch content, identical in every exec mode), so
    // a gang step can never carry a freeze or handover.
    fn set_frozen(&mut self, _start: u64, _len: u64) {
        unreachable!("reshard operations never run as gang steps");
    }

    fn clear_frozen(&mut self) {
        unreachable!("reshard operations never run as gang steps");
    }

    fn remove_account(&mut self, id: AccountId) -> Option<Account> {
        let _ = id;
        unreachable!("reshard operations never run as gang steps");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Partitioner;
    use sharper_common::{ClientId, ClusterId, TxId};

    const APS: u64 = 2_000;

    fn exec() -> Executor {
        Executor::new(ClusterId(0), Partitioner::range(1, APS))
    }

    fn stores(partitions: usize) -> (AccountStore, PartitionedStore) {
        let e = exec();
        let flat = e.genesis_store(APS, 10_000, ClientId);
        let split = e.genesis_partitioned(partitions, APS, 10_000, ClientId);
        (flat, split)
    }

    fn transfer(seq: u64, from: u64, to: u64, amount: u64) -> Arc<Transaction> {
        Arc::new(Transaction::transfer(
            ClientId(from),
            seq,
            sharper_common::AccountId(from),
            sharper_common::AccountId(to),
            amount,
        ))
    }

    /// A deterministic pseudo-random stream (SplitMix64) so the differential
    /// tests cover many shapes without external crates.
    struct Mix(u64);
    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    fn random_batch(seed: u64, len: usize, accounts: u64) -> Vec<Arc<Transaction>> {
        let mut rng = Mix(seed);
        (0..len)
            .map(|seq| {
                let from = rng.next() % accounts;
                let to = rng.next() % accounts;
                // Mix in over-draws and self-transfers so aborts occur too.
                let amount = if rng.next().is_multiple_of(7) {
                    1_000_000
                } else {
                    1 + rng.next() % 50
                };
                transfer(seq as u64, from, to, amount)
            })
            .collect()
    }

    fn assert_identical_to_serial(
        batch: &[Arc<Transaction>],
        partitions: usize,
        exec_threads: usize,
    ) {
        let e = exec();
        let (mut flat, mut split) = stores(partitions);
        let serial = e.apply_batch(&mut flat, batch);
        let parallel = e.apply_batch_partitioned(&mut split, batch, exec_threads);
        assert_eq!(
            serial, parallel.outcomes,
            "outcomes differ at {partitions} partitions × {exec_threads} threads"
        );
        assert_eq!(
            split.to_store(),
            flat,
            "state differs at {partitions} partitions × {exec_threads} threads"
        );
    }

    #[test]
    fn plan_classifies_solo_split_and_gang() {
        let e = exec();
        let map = PartitionMap::new(4, (APS / 4).max(1));
        // Solo: both accounts in partition 0.
        // Split: source in partition 0, credit in partition 2.
        // Gang: a two-op transaction reading partitions 1 and 3.
        let gang_tx = Arc::new(Transaction::new(
            TxId::new(ClientId(600), 2),
            vec![
                crate::Operation::Transfer {
                    from: sharper_common::AccountId(600),
                    to: sharper_common::AccountId(601),
                    amount: 1,
                },
                crate::Operation::Read {
                    account: sharper_common::AccountId(1_700),
                },
            ],
        ));
        let batch = vec![transfer(0, 10, 20, 1), transfer(1, 30, 1_200, 1), gang_tx];
        let plan = ExecPlan::build(&e, map, &batch);
        assert_eq!(plan.plans[0], TxPlan::Solo { part: 0 });
        assert_eq!(
            plan.plans[1],
            TxPlan::Split {
                vpart: 0,
                credit_parts: vec![2],
            }
        );
        assert_eq!(plan.plans[2], TxPlan::Gang { parts: vec![1, 3] });
        assert_eq!(plan.total_steps(), 1 + 2 + 2);
        assert_eq!(plan.active_partitions(), 4);
        // Solo(3) then Split's validate(2) serialise on partition 0; the
        // split credit lands on partition 2 one unit later; the gang needs
        // partitions 1 and 3 which are otherwise empty.
        assert_eq!(plan.serial_units(), 3 * TX_UNITS);
        assert_eq!(plan.makespan_units(), 6);
    }

    #[test]
    fn trivial_credit_and_not_local_transactions_are_preset() {
        // Shard 0 of 2 under range(2, 100): accounts [0, 100).
        let e = Executor::new(ClusterId(0), Partitioner::range(2, 100));
        let map = PartitionMap::new(2, 50);
        let batch = vec![
            // Source remote, destination local: trivial credit.
            transfer(0, 150, 10, 1),
            // Entirely remote.
            transfer(1, 150, 160, 1),
        ];
        let plan = ExecPlan::build(&e, map, &batch);
        assert_eq!(
            plan.plans[0],
            TxPlan::TrivialCredits {
                credit_parts: vec![0],
            }
        );
        assert_eq!(plan.preset[0], Some(ExecutionOutcome::Applied));
        assert_eq!(plan.plans[1], TxPlan::NotLocal);
        assert_eq!(plan.preset[1], Some(ExecutionOutcome::NotLocal));
        assert_eq!(plan.total_steps(), 1);
    }

    #[test]
    fn conflicting_transactions_stay_in_consensus_order() {
        // Three transfers draining the same source account: only the first
        // two can succeed, and which two depends entirely on batch order.
        let batch = vec![
            transfer(0, 10, 1_500, 6_000),
            transfer(1, 10, 700, 6_000),
            transfer(2, 10, 1_999, 4_000),
        ];
        for partitions in [1usize, 2, 4] {
            for threads in [1usize, 2, 4] {
                let e = exec();
                let (_, mut split) = stores(partitions);
                let result = e.apply_batch_partitioned(&mut split, &batch, threads);
                assert_eq!(
                    result.outcomes,
                    vec![
                        ExecutionOutcome::Applied,
                        ExecutionOutcome::Aborted,
                        ExecutionOutcome::Applied,
                    ],
                    "{partitions}p × {threads}t"
                );
            }
        }
    }

    #[test]
    fn cross_partition_transfer_ordering_is_serial() {
        // tx0 credits account 1500 (partition 3) from partition 0; tx1 then
        // spends from account 1500. Serially tx1 sees the credit; the
        // schedule must preserve that dependency across partitions.
        let batch = vec![
            transfer(0, 10, 1_500, 5_000),
            // Account 1500 starts with 10_000; after the credit it has
            // 15_000, so a 12_000 spend only works if the credit landed.
            transfer(1, 1_500, 20, 12_000),
        ];
        for partitions in [1usize, 2, 4, 8] {
            for threads in [1usize, 2, 4] {
                assert_identical_to_serial(&batch, partitions, threads);
                let e = exec();
                let (_, mut split) = stores(partitions);
                let result = e.apply_batch_partitioned(&mut split, &batch, threads);
                assert_eq!(
                    result.outcomes,
                    vec![ExecutionOutcome::Applied, ExecutionOutcome::Applied],
                    "{partitions}p × {threads}t"
                );
            }
        }
    }

    #[test]
    fn random_batches_match_serial_apply_bit_for_bit() {
        for seed in 0..8u64 {
            let batch = random_batch(seed, 64, APS);
            for partitions in [1usize, 2, 4, 8] {
                for threads in [1usize, 2, 4] {
                    assert_identical_to_serial(&batch, partitions, threads);
                }
            }
        }
    }

    #[test]
    fn hot_key_skew_matches_serial_apply() {
        // Every transaction touches account 0: maximal conflicts, the
        // schedule degenerates to (mostly) serial but must stay correct.
        let mut rng = Mix(0xD06);
        let batch: Vec<Arc<Transaction>> = (0..48)
            .map(|seq| {
                if seq % 2 == 0 {
                    transfer(seq, 0, 1 + rng.next() % (APS - 1), 1 + rng.next() % 20)
                } else {
                    transfer(seq, 1 + rng.next() % (APS - 1), 0, 1 + rng.next() % 20)
                }
            })
            .collect();
        for partitions in [2usize, 4, 8] {
            for threads in [2usize, 4] {
                assert_identical_to_serial(&batch, partitions, threads);
            }
        }
    }

    #[test]
    fn split_schedule_beats_serial_on_uniform_batches() {
        // The acceptance-criteria shape: a 16-tx uniform batch at 4
        // partitions must have a critical path at least 1.5× shorter than
        // serial execution.
        let e = exec();
        let map = PartitionMap::new(4, APS / 4);
        let batch = random_batch(0x5EED, 16, APS);
        let plan = ExecPlan::build(&e, map, &batch);
        assert_eq!(plan.serial_units(), 16 * TX_UNITS);
        assert!(
            plan.serial_units() as f64 / plan.makespan_units() as f64 >= 1.5,
            "makespan {} vs serial {}",
            plan.makespan_units(),
            plan.serial_units()
        );
    }

    #[test]
    fn gang_transactions_apply_atomically_across_partitions() {
        // One transaction whose two transfers read partitions 0 and 2.
        let tx = Arc::new(Transaction::new(
            TxId::new(ClientId(10), 0),
            vec![
                crate::Operation::Transfer {
                    from: sharper_common::AccountId(10),
                    to: sharper_common::AccountId(1_010),
                    amount: 100,
                },
                crate::Operation::Transfer {
                    from: sharper_common::AccountId(10),
                    to: sharper_common::AccountId(11),
                    amount: 50,
                },
            ],
        ));
        // Owner mismatch: client 10 does not own account 1010, so a second
        // gang transaction aborts without a trace.
        let bad = Arc::new(Transaction::new(
            TxId::new(ClientId(10), 1),
            vec![
                crate::Operation::Transfer {
                    from: sharper_common::AccountId(1_010),
                    to: sharper_common::AccountId(12),
                    amount: 1,
                },
                crate::Operation::Read {
                    account: sharper_common::AccountId(10),
                },
            ],
        ));
        let batch = vec![tx, bad];
        for threads in [1usize, 2, 4] {
            let e = exec();
            let (mut flat, mut split) = stores(4);
            let serial = e.apply_batch(&mut flat, &batch);
            let result = e.apply_batch_partitioned(&mut split, &batch, threads);
            assert_eq!(serial, result.outcomes);
            assert_eq!(
                result.outcomes,
                vec![ExecutionOutcome::Applied, ExecutionOutcome::Aborted]
            );
            assert_eq!(split.to_store(), flat);
            assert_eq!(
                split.balance(sharper_common::AccountId(1_010)),
                Some(10_100)
            );
        }
    }

    #[test]
    fn empty_and_single_partition_batches_run_sequentially() {
        let e = exec();
        let (_, mut split) = stores(1);
        let result = e.apply_batch_partitioned(&mut split, &[], 4);
        assert!(result.outcomes.is_empty());
        assert_eq!(result.makespan_units, 0);
        let batch = vec![transfer(0, 1, 2, 5)];
        let result = e.apply_batch_partitioned(&mut split, &batch, 4);
        assert_eq!(result.outcomes, vec![ExecutionOutcome::Applied]);
        // One partition: the schedule is exactly serial.
        assert_eq!(result.makespan_units, result.serial_units);
    }
}
