//! Transactions of the accounting application (§2.4, §4).
//!
//! A transaction is requested by a client and consists of one or more
//! transfer operations ("transfer x units from account 1001 to account
//! 1002"). A transaction is *intra-shard* if every account it touches lives
//! in one shard and *cross-shard* otherwise; the set of involved clusters is
//! derived from the accounts through the [`crate::Partitioner`].

use crate::partition::Partitioner;
use serde::{Deserialize, Serialize};
use sharper_common::{AccountId, ClientId, ClusterId, TxId};
use sharper_crypto::{hash, Digest};
use std::collections::BTreeSet;
use std::fmt;

/// One account's state carried by a [`Operation::Handover`]: its offset
/// inside the moved range plus the balance and owner to install on the
/// destination shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HandoverEntry {
    /// Account offset within the moved range (`account = start + offset`).
    pub offset: u64,
    /// The account's balance at the freeze point.
    pub balance: u64,
    /// The account's owner.
    pub owner: ClientId,
}

/// A single operation inside a transaction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operation {
    /// Move `amount` units from `from` to `to`. Valid only if the requesting
    /// client owns `from` and `from` has at least `amount` units.
    Transfer {
        /// Source account (debited).
        from: AccountId,
        /// Destination account (credited).
        to: AccountId,
        /// Number of units moved.
        amount: u64,
    },
    /// Read the balance of an account (used by read-heavy workloads; has no
    /// effect on state but still participates in ordering).
    Read {
        /// The account being read.
        account: AccountId,
    },
    /// Resharding phase 1: stabilise the account range `[start, start+len)`
    /// on its current owner shard. Ordered intra-shard like any transaction;
    /// once applied, client transactions touching the range abort
    /// deterministically until the handover completes.
    Freeze {
        /// First account of the range being moved.
        start: u64,
        /// Number of consecutive accounts.
        len: u64,
        /// The shard-map epoch this reshard will establish.
        epoch: u64,
    },
    /// Resharding phase 2: the cross-shard handover moving the frozen range
    /// from shard `from` to shard `to`. Rides the flattened cross-shard
    /// commit, so the range leaves the source and lands on the destination
    /// in one atomically committed (and audited) block on both chains.
    Handover {
        /// First account of the moved range.
        start: u64,
        /// Number of consecutive accounts.
        len: u64,
        /// The shard giving the range up.
        from: ClusterId,
        /// The shard receiving the range.
        to: ClusterId,
        /// The shard-map epoch both clusters switch to at apply.
        epoch: u64,
        /// The frozen account states being moved.
        entries: Vec<HandoverEntry>,
    },
}

impl Operation {
    /// The accounts this operation touches.
    pub fn accounts(&self) -> Vec<AccountId> {
        match self {
            Operation::Transfer { from, to, .. } => vec![*from, *to],
            Operation::Read { account } => vec![*account],
            // Reshard operations address whole ranges, not accounts; their
            // cluster routing is explicit (see `involved_clusters`), so they
            // contribute the range start as a representative account only
            // for conflict purposes on the owning shard.
            Operation::Freeze { start, .. } | Operation::Handover { start, .. } => {
                vec![AccountId(*start)]
            }
        }
    }

    /// Whether this is a resharding control operation (freeze or handover).
    pub fn is_reshard(&self) -> bool {
        matches!(self, Operation::Freeze { .. } | Operation::Handover { .. })
    }

    /// Canonical byte encoding used for hashing/signing.
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Operation::Transfer { from, to, amount } => {
                out.push(0x01);
                out.extend_from_slice(&from.0.to_le_bytes());
                out.extend_from_slice(&to.0.to_le_bytes());
                out.extend_from_slice(&amount.to_le_bytes());
            }
            Operation::Read { account } => {
                out.push(0x02);
                out.extend_from_slice(&account.0.to_le_bytes());
            }
            Operation::Freeze { start, len, epoch } => {
                out.push(0x03);
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            Operation::Handover {
                start,
                len,
                from,
                to,
                epoch,
                entries,
            } => {
                out.push(0x04);
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(&from.0.to_le_bytes());
                out.extend_from_slice(&to.0.to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for e in entries {
                    out.extend_from_slice(&e.offset.to_le_bytes());
                    out.extend_from_slice(&e.balance.to_le_bytes());
                    out.extend_from_slice(&e.owner.0.to_le_bytes());
                }
            }
        }
    }
}

/// A client transaction: the unit of consensus and the content of exactly one
/// block (§2.3: "each block consists of a single transaction").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transaction {
    /// Globally unique identifier (client id + client-local sequence).
    pub id: TxId,
    /// The operations to apply atomically.
    pub operations: Vec<Operation>,
}

impl Transaction {
    /// Creates a transaction.
    pub fn new(id: TxId, operations: Vec<Operation>) -> Self {
        Self { id, operations }
    }

    /// Convenience constructor for a single transfer.
    pub fn transfer(
        client: ClientId,
        seq: u64,
        from: AccountId,
        to: AccountId,
        amount: u64,
    ) -> Self {
        Self::new(
            TxId::new(client, seq),
            vec![Operation::Transfer { from, to, amount }],
        )
    }

    /// Convenience constructor for a resharding freeze.
    pub fn freeze(client: ClientId, seq: u64, start: u64, len: u64, epoch: u64) -> Self {
        Self::new(
            TxId::new(client, seq),
            vec![Operation::Freeze { start, len, epoch }],
        )
    }

    /// The client that requested the transaction.
    pub fn client(&self) -> ClientId {
        self.id.client
    }

    /// Whether the transaction carries any resharding control operation.
    pub fn is_reshard(&self) -> bool {
        self.operations.iter().any(Operation::is_reshard)
    }

    /// The handover operation, if this is a handover transaction.
    pub fn handover_op(&self) -> Option<&Operation> {
        self.operations
            .iter()
            .find(|op| matches!(op, Operation::Handover { .. }))
    }

    /// Every account the transaction touches (deduplicated, sorted).
    pub fn accounts(&self) -> Vec<AccountId> {
        let set: BTreeSet<AccountId> = self
            .operations
            .iter()
            .flat_map(|op| op.accounts())
            .collect();
        set.into_iter().collect()
    }

    /// The clusters (shards) involved in this transaction, sorted ascending.
    ///
    /// A [`Operation::Handover`] names its involved clusters explicitly
    /// (`{from, to}`), so handover routing never depends on which shard-map
    /// epoch the computing node holds — the one place where epoch skew could
    /// otherwise fork the involved set mid-reconfiguration.
    pub fn involved_clusters(&self, partitioner: &Partitioner) -> Vec<ClusterId> {
        let mut set: BTreeSet<ClusterId> = BTreeSet::new();
        for op in &self.operations {
            match op {
                Operation::Handover { from, to, .. } => {
                    set.insert(*from);
                    set.insert(*to);
                }
                _ => {
                    for a in op.accounts() {
                        set.insert(partitioner.shard_of(a));
                    }
                }
            }
        }
        set.into_iter().collect()
    }

    /// Whether this transaction touches more than one shard.
    pub fn is_cross_shard(&self, partitioner: &Partitioner) -> bool {
        self.involved_clusters(partitioner).len() > 1
    }

    /// Canonical byte encoding used for hashing and signing.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.operations.len() * 25);
        out.extend_from_slice(b"sharper-tx");
        out.extend_from_slice(&self.id.client.0.to_le_bytes());
        out.extend_from_slice(&self.id.seq.to_le_bytes());
        out.extend_from_slice(&(self.operations.len() as u32).to_le_bytes());
        for op in &self.operations {
            op.encode_into(&mut out);
        }
        out
    }

    /// The digest `D(m)` of this transaction.
    pub fn digest(&self) -> Digest {
        hash(&self.canonical_bytes())
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} op(s)]", self.id, self.operations.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partitioner() -> Partitioner {
        // 4 shards, 1000 accounts per shard, range partitioned.
        Partitioner::range(4, 1000)
    }

    #[test]
    fn accounts_are_deduplicated_and_sorted() {
        let tx = Transaction::new(
            TxId::new(ClientId(1), 0),
            vec![
                Operation::Transfer {
                    from: AccountId(5),
                    to: AccountId(2),
                    amount: 1,
                },
                Operation::Transfer {
                    from: AccountId(2),
                    to: AccountId(5),
                    amount: 1,
                },
            ],
        );
        assert_eq!(tx.accounts(), vec![AccountId(2), AccountId(5)]);
    }

    #[test]
    fn intra_vs_cross_shard_detection() {
        let p = partitioner();
        let intra = Transaction::transfer(ClientId(1), 0, AccountId(10), AccountId(20), 5);
        assert!(!intra.is_cross_shard(&p));
        assert_eq!(intra.involved_clusters(&p), vec![ClusterId(0)]);

        let cross = Transaction::transfer(ClientId(1), 1, AccountId(10), AccountId(1500), 5);
        assert!(cross.is_cross_shard(&p));
        assert_eq!(
            cross.involved_clusters(&p),
            vec![ClusterId(0), ClusterId(1)]
        );
    }

    #[test]
    fn involved_clusters_are_sorted_regardless_of_operation_order() {
        let p = partitioner();
        let tx = Transaction::new(
            TxId::new(ClientId(2), 7),
            vec![
                Operation::Transfer {
                    from: AccountId(3500),
                    to: AccountId(100),
                    amount: 1,
                },
                Operation::Read {
                    account: AccountId(2500),
                },
            ],
        );
        assert_eq!(
            tx.involved_clusters(&p),
            vec![ClusterId(0), ClusterId(2), ClusterId(3)]
        );
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let a = Transaction::transfer(ClientId(1), 0, AccountId(1), AccountId(2), 10);
        let b = Transaction::transfer(ClientId(1), 0, AccountId(1), AccountId(2), 10);
        let c = Transaction::transfer(ClientId(1), 0, AccountId(1), AccountId(2), 11);
        let d = Transaction::transfer(ClientId(1), 1, AccountId(1), AccountId(2), 10);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn read_operations_touch_one_account() {
        let op = Operation::Read {
            account: AccountId(9),
        };
        assert_eq!(op.accounts(), vec![AccountId(9)]);
    }

    #[test]
    fn display_mentions_id_and_op_count() {
        let tx = Transaction::transfer(ClientId(3), 4, AccountId(1), AccountId(2), 1);
        assert_eq!(tx.to_string(), "t3.4[1 op(s)]");
    }

    #[test]
    fn handover_involved_clusters_are_explicit_and_map_independent() {
        let p = partitioner();
        let tx = Transaction::new(
            TxId::new(ClientId(9), 0),
            vec![Operation::Handover {
                start: 500,
                len: 100,
                from: ClusterId(0),
                to: ClusterId(3),
                epoch: 1,
                entries: vec![HandoverEntry {
                    offset: 0,
                    balance: 42,
                    owner: ClientId(500),
                }],
            }],
        );
        assert!(tx.is_reshard());
        assert!(tx.handover_op().is_some());
        assert_eq!(tx.involved_clusters(&p), vec![ClusterId(0), ClusterId(3)]);
        // Even a partitioner that already routes the range elsewhere yields
        // the same involved set: handovers carry their clusters explicitly.
        let mut moved = partitioner();
        moved.apply_range_move(500, 100, ClusterId(3));
        assert_eq!(
            tx.involved_clusters(&moved),
            vec![ClusterId(0), ClusterId(3)]
        );
        assert!(tx.is_cross_shard(&p));
    }

    #[test]
    fn freeze_routes_to_range_owner_and_hashes_stably() {
        let p = partitioner();
        let tx = Transaction::freeze(ClientId(1), 0, 1200, 100, 1);
        assert!(tx.is_reshard());
        assert_eq!(tx.involved_clusters(&p), vec![ClusterId(1)]);
        assert!(!tx.is_cross_shard(&p));
        let again = Transaction::freeze(ClientId(1), 0, 1200, 100, 1);
        assert_eq!(tx.digest(), again.digest());
        let other = Transaction::freeze(ClientId(1), 0, 1200, 100, 2);
        assert_ne!(tx.digest(), other.digest());
    }

    #[test]
    fn canonical_bytes_distinguish_op_order() {
        let ops1 = vec![
            Operation::Read {
                account: AccountId(1),
            },
            Operation::Read {
                account: AccountId(2),
            },
        ];
        let ops2 = vec![
            Operation::Read {
                account: AccountId(2),
            },
            Operation::Read {
                account: AccountId(1),
            },
        ];
        let t1 = Transaction::new(TxId::new(ClientId(1), 0), ops1);
        let t2 = Transaction::new(TxId::new(ClientId(1), 0), ops2);
        assert_ne!(t1.digest(), t2.digest());
    }
}
