//! State-access traits and the partitioned per-shard store.
//!
//! The executor originally mutated one flat [`AccountStore`] per shard.
//! For intra-cluster parallel execution the shard's accounts are split by
//! account range into `partitions` disjoint [`AccountStore`]s behind a
//! [`PartitionedStore`]; the scheduler in [`crate::scheduler`] then runs
//! sub-batches touching disjoint partitions on different workers.
//!
//! The [`StateRead`] / [`StateWrite`] traits abstract "something accounts can
//! be read from / applied to" so the same validation and apply code runs
//! against a flat store, the whole partitioned store, a single partition, or
//! a multi-partition gang view — which is what makes the partitioned result
//! bit-identical to serial apply by construction.

use crate::account::{Account, AccountStore};
use serde::{Deserialize, Serialize};
use sharper_common::{AccountId, ClientId, ClusterId, Result};

/// Read access to account state.
pub trait StateRead {
    /// Looks up an account.
    fn account(&self, id: AccountId) -> Option<&Account>;

    /// Whether the state holds the account.
    fn contains(&self, id: AccountId) -> bool {
        self.account(id).is_some()
    }

    /// The balance of an account, if present.
    fn balance(&self, id: AccountId) -> Option<u64> {
        self.account(id).map(|a| a.balance)
    }

    /// Whether `id` falls in a range frozen by an in-flight reshard
    /// (validation aborts client transactions touching frozen accounts).
    fn is_frozen(&self, id: AccountId) -> bool {
        let _ = id;
        false
    }
}

/// Mutating access to account state.
pub trait StateWrite: StateRead {
    /// Creates (or resets) an account.
    fn create_account(&mut self, id: AccountId, owner: ClientId, balance: u64);

    /// Debits `amount` from `id` after checking ownership and balance.
    fn debit(&mut self, id: AccountId, requester: ClientId, amount: u64) -> Result<()>;

    /// Credits `amount` to `id`.
    fn credit(&mut self, id: AccountId, amount: u64) -> Result<()>;

    /// Freezes the account range `[start, start + len)` for an in-flight
    /// reshard (reshard batches always apply serially, so gang views never
    /// see this).
    fn set_frozen(&mut self, start: u64, len: u64);

    /// Clears the frozen range.
    fn clear_frozen(&mut self);

    /// Removes an account outright (resharding handover: the range leaves
    /// this shard). Returns the removed record, if present.
    fn remove_account(&mut self, id: AccountId) -> Option<Account>;
}

impl StateRead for AccountStore {
    fn account(&self, id: AccountId) -> Option<&Account> {
        AccountStore::account(self, id)
    }

    fn contains(&self, id: AccountId) -> bool {
        AccountStore::contains(self, id)
    }

    fn is_frozen(&self, id: AccountId) -> bool {
        AccountStore::is_frozen(self, id)
    }
}

impl StateWrite for AccountStore {
    fn create_account(&mut self, id: AccountId, owner: ClientId, balance: u64) {
        AccountStore::create_account(self, id, owner, balance);
    }

    fn debit(&mut self, id: AccountId, requester: ClientId, amount: u64) -> Result<()> {
        AccountStore::debit(self, id, requester, amount)
    }

    fn credit(&mut self, id: AccountId, amount: u64) -> Result<()> {
        AccountStore::credit(self, id, amount)
    }

    fn set_frozen(&mut self, start: u64, len: u64) {
        AccountStore::set_frozen(self, start, len);
    }

    fn clear_frozen(&mut self) {
        AccountStore::clear_frozen(self);
    }

    fn remove_account(&mut self, id: AccountId) -> Option<Account> {
        AccountStore::remove_account(self, id)
    }
}

/// The pure account → partition mapping of a [`PartitionedStore`].
///
/// Small and `Copy` so the scheduler can route operations without borrowing
/// the store itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionMap {
    chunk: u64,
    partitions: usize,
}

impl PartitionMap {
    /// A mapping splitting accounts into `partitions` range chunks of
    /// `chunk` consecutive accounts each (cycling).
    pub fn new(partitions: usize, chunk: u64) -> Self {
        Self {
            chunk: chunk.max(1),
            partitions: partitions.max(1),
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The partition that owns `account`.
    pub fn partition_of(&self, account: AccountId) -> usize {
        ((account.0 / self.chunk) as usize) % self.partitions
    }
}

/// One shard's account state, split by account range into disjoint
/// per-partition [`AccountStore`]s.
///
/// With `partitions = 1` this is a thin wrapper around the seed's flat store
/// and behaves identically. The partition an account belongs to is a pure
/// function of its id ([`PartitionMap`]), so routing never depends on store
/// contents and two replicas with the same configuration always agree on the
/// layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionedStore {
    shard: ClusterId,
    map: PartitionMap,
    parts: Vec<AccountStore>,
}

impl PartitionedStore {
    /// The chunk size that splits a shard of `accounts_per_shard` accounts
    /// into `partitions` contiguous ranges (`None` — e.g. a hash
    /// partitioner's unbounded shard — falls back to striping single
    /// accounts, which is still a valid deterministic map).
    pub fn chunk_for(accounts_per_shard: Option<u64>, partitions: usize) -> u64 {
        let parts = partitions.max(1) as u64;
        match accounts_per_shard {
            Some(aps) => aps.div_ceil(parts).max(1),
            None => 1,
        }
    }

    /// Creates an empty partitioned store for `shard` with `partitions`
    /// range partitions of `chunk` consecutive accounts each.
    pub fn new(shard: ClusterId, partitions: usize, chunk: u64) -> Self {
        let map = PartitionMap::new(partitions, chunk);
        let parts = (0..map.partitions())
            .map(|_| AccountStore::new(shard))
            .collect();
        Self { shard, map, parts }
    }

    /// Splits an existing flat store into `partitions` partitions, routing
    /// each account by the range map. `chunk` is the number of consecutive
    /// accounts per partition stripe (usually `accounts_per_shard /
    /// partitions`, so each partition is one contiguous range).
    pub fn from_store(store: AccountStore, partitions: usize, chunk: u64) -> Self {
        let mut out = Self::new(store.shard(), partitions, chunk);
        for (id, account) in store.iter() {
            let p = out.map.partition_of(*id);
            out.parts[p].create_account(*id, account.owner, account.balance);
        }
        if let Some((start, len)) = store.frozen_range() {
            out.set_frozen(start, len);
        }
        out
    }

    /// Flattens the partitions back into one [`AccountStore`] (layout-neutral
    /// comparison helper for tests and audits).
    pub fn to_store(&self) -> AccountStore {
        let mut out = AccountStore::new(self.shard);
        for part in &self.parts {
            for (id, account) in part.iter() {
                out.create_account(*id, account.owner, account.balance);
            }
        }
        if let Some((start, len)) = self.frozen_range() {
            out.set_frozen(start, len);
        }
        out
    }

    /// Freezes `[start, start + len)` on every partition (the frozen range
    /// must be visible to whichever partition validates a touching
    /// transaction).
    pub fn set_frozen(&mut self, start: u64, len: u64) {
        for part in &mut self.parts {
            part.set_frozen(start, len);
        }
    }

    /// Clears the frozen range on every partition.
    pub fn clear_frozen(&mut self) {
        for part in &mut self.parts {
            part.clear_frozen();
        }
    }

    /// The currently frozen range, if any (identical on every partition).
    pub fn frozen_range(&self) -> Option<(u64, u64)> {
        self.parts.first().and_then(AccountStore::frozen_range)
    }

    /// Removes an account outright (resharding handover).
    pub fn remove_account(&mut self, id: AccountId) -> Option<Account> {
        let p = self.map.partition_of(id);
        self.parts[p].remove_account(id)
    }

    /// The shard this store holds.
    pub fn shard(&self) -> ClusterId {
        self.shard
    }

    /// The account → partition mapping.
    pub fn partition_map(&self) -> PartitionMap {
        self.map
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// The store of one partition.
    pub fn part(&self, p: usize) -> &AccountStore {
        &self.parts[p]
    }

    /// Mutable access to one partition's store.
    pub fn part_mut(&mut self, p: usize) -> &mut AccountStore {
        &mut self.parts[p]
    }

    /// Mutable access to every partition at once (used by the parallel
    /// runner to hand each worker its own disjoint slice of state).
    pub fn parts_mut(&mut self) -> &mut [AccountStore] {
        &mut self.parts
    }

    /// Total number of accounts across all partitions.
    pub fn len(&self) -> usize {
        self.parts.iter().map(AccountStore::len).sum()
    }

    /// Whether the shard holds no accounts.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(AccountStore::is_empty)
    }

    /// Sum of all balances in the shard.
    pub fn total_balance(&self) -> u128 {
        self.parts.iter().map(AccountStore::total_balance).sum()
    }

    /// Looks up an account (inherent mirror of [`StateRead::account`]).
    pub fn account(&self, id: AccountId) -> Option<&Account> {
        self.parts[self.map.partition_of(id)].account(id)
    }

    /// The balance of an account, if it exists in this shard.
    pub fn balance(&self, id: AccountId) -> Option<u64> {
        self.account(id).map(|a| a.balance)
    }

    /// Whether the store holds the account.
    pub fn contains(&self, id: AccountId) -> bool {
        self.parts[self.map.partition_of(id)].contains(id)
    }

    /// Iterates over all accounts of all partitions.
    pub fn iter(&self) -> impl Iterator<Item = (&AccountId, &Account)> {
        self.parts.iter().flat_map(AccountStore::iter)
    }
}

impl StateRead for PartitionedStore {
    fn account(&self, id: AccountId) -> Option<&Account> {
        PartitionedStore::account(self, id)
    }

    fn contains(&self, id: AccountId) -> bool {
        PartitionedStore::contains(self, id)
    }

    fn is_frozen(&self, id: AccountId) -> bool {
        self.parts[self.map.partition_of(id)].is_frozen(id)
    }
}

impl StateWrite for PartitionedStore {
    fn create_account(&mut self, id: AccountId, owner: ClientId, balance: u64) {
        let p = self.map.partition_of(id);
        self.parts[p].create_account(id, owner, balance);
    }

    fn debit(&mut self, id: AccountId, requester: ClientId, amount: u64) -> Result<()> {
        let p = self.map.partition_of(id);
        self.parts[p].debit(id, requester, amount)
    }

    fn credit(&mut self, id: AccountId, amount: u64) -> Result<()> {
        let p = self.map.partition_of(id);
        self.parts[p].credit(id, amount)
    }

    fn set_frozen(&mut self, start: u64, len: u64) {
        PartitionedStore::set_frozen(self, start, len);
    }

    fn clear_frozen(&mut self) {
        PartitionedStore::clear_frozen(self);
    }

    fn remove_account(&mut self, id: AccountId) -> Option<Account> {
        PartitionedStore::remove_account(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(partitions: usize) -> PartitionedStore {
        let mut flat = AccountStore::new(ClusterId(0));
        for i in 0..100u64 {
            flat.create_account(AccountId(i), ClientId(i), 1_000);
        }
        PartitionedStore::from_store(flat, partitions, 100 / partitions as u64)
    }

    #[test]
    fn range_map_routes_contiguous_chunks() {
        let map = PartitionMap::new(4, 25);
        assert_eq!(map.partition_of(AccountId(0)), 0);
        assert_eq!(map.partition_of(AccountId(24)), 0);
        assert_eq!(map.partition_of(AccountId(25)), 1);
        assert_eq!(map.partition_of(AccountId(99)), 3);
        // Wraps for accounts beyond one shard stripe (other shards' ranges
        // still map deterministically).
        assert_eq!(map.partition_of(AccountId(100)), 0);
        // Degenerate inputs clamp instead of dividing by zero.
        assert_eq!(PartitionMap::new(0, 0).partition_of(AccountId(7)), 0);
    }

    #[test]
    fn from_store_partitions_and_flattens_losslessly() {
        let flat = seeded(1).to_store();
        for partitions in [1usize, 2, 4, 8] {
            let split = seeded(partitions);
            assert_eq!(split.partitions(), partitions);
            assert_eq!(split.len(), 100);
            assert_eq!(split.total_balance(), 100_000);
            assert_eq!(split.to_store(), flat, "{partitions} partitions");
            // Every partition holds exactly the accounts the map assigns it.
            for p in 0..partitions {
                for (id, _) in split.part(p).iter() {
                    assert_eq!(split.partition_map().partition_of(*id), p);
                }
            }
        }
    }

    #[test]
    fn reads_and_writes_route_to_the_owning_partition() {
        let mut s = seeded(4);
        assert_eq!(s.balance(AccountId(30)), Some(1_000));
        assert!(s.contains(AccountId(99)));
        assert!(!s.contains(AccountId(500)));
        StateWrite::debit(&mut s, AccountId(30), ClientId(30), 250).unwrap();
        StateWrite::credit(&mut s, AccountId(80), 250).unwrap();
        assert_eq!(s.balance(AccountId(30)), Some(750));
        assert_eq!(s.balance(AccountId(80)), Some(1_250));
        assert_eq!(s.total_balance(), 100_000);
        // The mutated accounts live in the partitions the map says.
        assert!(s.part(1).contains(AccountId(30)));
        assert!(s.part(3).contains(AccountId(80)));
        // Creates route as well.
        StateWrite::create_account(&mut s, AccountId(26), ClientId(9), 5);
        assert!(s.part(1).contains(AccountId(26)));
    }

    #[test]
    fn single_partition_store_matches_flat_semantics() {
        let mut s = seeded(1);
        let mut flat = seeded(1).to_store();
        StateWrite::debit(&mut s, AccountId(1), ClientId(1), 10).unwrap();
        flat.debit(AccountId(1), ClientId(1), 10).unwrap();
        assert_eq!(s.to_store(), flat);
        assert_eq!(s.shard(), ClusterId(0));
        assert!(!s.is_empty());
        assert_eq!(s.iter().count(), 100);
    }
}
