//! Mapping of accounts to shards.
//!
//! SharPer shards the data into `|P|` shards, one per cluster (§2.2). The
//! paper notes that "an appropriate sharding usually needs to have prior
//! knowledge of the data and how the data is accessed by different
//! transactions (workload-aware)". This module provides:
//!
//! * a range partitioner (the default for the evaluation workload, where the
//!   workload generator chooses accounts per shard explicitly),
//! * a hash partitioner, and
//! * explicit per-account overrides, which is how a workload-aware placement
//!   (e.g. produced by a tool like Schism \[20\]) is expressed.

use serde::{Deserialize, Serialize};
use sharper_common::{AccountId, ClusterId};
use std::collections::HashMap;

/// Strategy for the default (non-overridden) mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Strategy {
    /// Account `a` lives in shard `(a / accounts_per_shard) % shards`.
    Range { accounts_per_shard: u64 },
    /// Account `a` lives in shard `a % shards`.
    Hash,
}

/// A contiguous account range reassigned away from its strategy-derived
/// owner by an online shard split (or back to it by a merge).
///
/// Overlays are how the epoch'd shard map expresses resharding: the base
/// strategy never changes, a split adds an overlay moving `[start,
/// start+len)` to `to`, and a merge removes it (moving the range back to the
/// genesis owner deletes the overlay outright, so a split followed by the
/// inverse merge restores the exact original map).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RangeMove {
    /// First account of the moved range.
    pub start: u64,
    /// Number of consecutive accounts moved.
    pub len: u64,
    /// The shard now owning the range.
    pub to: ClusterId,
}

/// Maps accounts to the cluster (shard) that owns them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partitioner {
    shards: u32,
    strategy: Strategy,
    /// Workload-aware overrides taking precedence over the strategy.
    overrides: HashMap<AccountId, ClusterId>,
    /// Resharding overlays (sorted by `start`, disjoint). Checked before the
    /// strategy but after explicit overrides.
    overlays: Vec<RangeMove>,
}

impl Partitioner {
    /// Range partitioning: accounts `[0, accounts_per_shard)` in shard 0,
    /// `[accounts_per_shard, 2*accounts_per_shard)` in shard 1, and so on
    /// (wrapping around after `shards`).
    pub fn range(shards: u32, accounts_per_shard: u64) -> Self {
        assert!(shards > 0, "at least one shard is required");
        assert!(
            accounts_per_shard > 0,
            "accounts_per_shard must be positive"
        );
        Self {
            shards,
            strategy: Strategy::Range { accounts_per_shard },
            overrides: HashMap::new(),
            overlays: Vec::new(),
        }
    }

    /// Hash (modulo) partitioning.
    pub fn hashed(shards: u32) -> Self {
        assert!(shards > 0, "at least one shard is required");
        Self {
            shards,
            strategy: Strategy::Hash,
            overrides: HashMap::new(),
            overlays: Vec::new(),
        }
    }

    /// Adds a workload-aware override pinning `account` to `shard`.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn with_override(mut self, account: AccountId, shard: ClusterId) -> Self {
        assert!(shard.0 < self.shards, "override shard out of range");
        self.overrides.insert(account, shard);
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.shards
    }

    /// The shard that owns `account`.
    pub fn shard_of(&self, account: AccountId) -> ClusterId {
        if let Some(s) = self.overrides.get(&account) {
            return *s;
        }
        if let Some(mv) = self.overlay_covering(account) {
            return mv.to;
        }
        self.base_shard_of(account)
    }

    /// The shard the base strategy assigns `account` to, ignoring overlays
    /// (the genesis owner a merge returns the range to).
    pub fn base_shard_of(&self, account: AccountId) -> ClusterId {
        match self.strategy {
            Strategy::Range { accounts_per_shard } => {
                ClusterId(((account.0 / accounts_per_shard) % self.shards as u64) as u32)
            }
            Strategy::Hash => ClusterId((account.0 % self.shards as u64) as u32),
        }
    }

    fn overlay_covering(&self, account: AccountId) -> Option<&RangeMove> {
        let idx = self
            .overlays
            .partition_point(|mv| mv.start + mv.len <= account.0);
        self.overlays
            .get(idx)
            .filter(|mv| mv.start <= account.0 && account.0 < mv.start + mv.len)
    }

    /// Reassigns the contiguous range `[start, start + len)` to shard `to`.
    ///
    /// Moving a range back to its genesis (strategy-derived) owner removes
    /// the overlay instead of recording one, so a split immediately followed
    /// by the inverse merge restores the exact original partitioner. Any
    /// previous overlay overlapping the range is replaced; partial overlaps
    /// are truncated to keep the overlay set disjoint.
    ///
    /// # Panics
    /// Panics if `to` is out of range or `len` is zero.
    pub fn apply_range_move(&mut self, start: u64, len: u64, to: ClusterId) {
        assert!(to.0 < self.shards, "range move target shard out of range");
        assert!(len > 0, "range move must cover at least one account");
        let end = start + len;
        // Remove or truncate anything overlapping the moved range.
        let mut kept = Vec::with_capacity(self.overlays.len() + 1);
        for mv in self.overlays.drain(..) {
            let mv_end = mv.start + mv.len;
            if mv_end <= start || mv.start >= end {
                kept.push(mv);
                continue;
            }
            if mv.start < start {
                kept.push(RangeMove {
                    start: mv.start,
                    len: start - mv.start,
                    to: mv.to,
                });
            }
            if mv_end > end {
                kept.push(RangeMove {
                    start: end,
                    len: mv_end - end,
                    to: mv.to,
                });
            }
        }
        // A move back to the genesis owner is a merge: the base strategy
        // already maps the whole range there, so no overlay is recorded.
        // (Only when the range has a single genesis owner, which bucket-
        // aligned reshard directives guarantee.)
        let genesis = self.base_shard_of(AccountId(start));
        let uniform_genesis = self.base_shard_of(AccountId(end - 1)) == genesis;
        if !(uniform_genesis && genesis == to) {
            kept.push(RangeMove { start, len, to });
        }
        kept.sort_unstable_by_key(|mv| mv.start);
        self.overlays = kept;
    }

    /// The current resharding overlays, sorted by range start (the payload a
    /// redirect / map-announce message carries to bring a stale map up to
    /// date).
    pub fn overlays(&self) -> &[RangeMove] {
        &self.overlays
    }

    /// Replaces the overlay set wholesale (installing a newer epoch's map
    /// received via redirect or announce).
    pub fn install_overlays(&mut self, overlays: Vec<RangeMove>) {
        let mut overlays = overlays;
        overlays.sort_unstable_by_key(|mv| mv.start);
        self.overlays = overlays;
    }

    /// Whether `account` is owned by `shard`.
    pub fn owns(&self, shard: ClusterId, account: AccountId) -> bool {
        self.shard_of(account) == shard
    }

    /// The canonical `i`-th account of a shard under range partitioning.
    ///
    /// Workload generators use this to draw accounts from a specific shard.
    /// Returns `None` if the partitioner is not range-based or `i` is outside
    /// the shard's range.
    pub fn account_in_shard(&self, shard: ClusterId, i: u64) -> Option<AccountId> {
        match self.strategy {
            Strategy::Range { accounts_per_shard } => {
                if shard.0 >= self.shards || i >= accounts_per_shard {
                    None
                } else {
                    Some(AccountId(shard.0 as u64 * accounts_per_shard + i))
                }
            }
            Strategy::Hash => {
                if shard.0 >= self.shards {
                    None
                } else {
                    Some(AccountId(i * self.shards as u64 + shard.0 as u64))
                }
            }
        }
    }

    /// Number of accounts per shard for range partitioning (`None` for hash
    /// partitioning, which is unbounded).
    pub fn accounts_per_shard(&self) -> Option<u64> {
        match self.strategy {
            Strategy::Range { accounts_per_shard } => Some(accounts_per_shard),
            Strategy::Hash => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_partitioning_assigns_contiguous_blocks() {
        let p = Partitioner::range(4, 100);
        assert_eq!(p.shard_of(AccountId(0)), ClusterId(0));
        assert_eq!(p.shard_of(AccountId(99)), ClusterId(0));
        assert_eq!(p.shard_of(AccountId(100)), ClusterId(1));
        assert_eq!(p.shard_of(AccountId(399)), ClusterId(3));
        // Wraps after the last shard.
        assert_eq!(p.shard_of(AccountId(400)), ClusterId(0));
    }

    #[test]
    fn hash_partitioning_uses_modulo() {
        let p = Partitioner::hashed(3);
        assert_eq!(p.shard_of(AccountId(0)), ClusterId(0));
        assert_eq!(p.shard_of(AccountId(4)), ClusterId(1));
        assert_eq!(p.shard_of(AccountId(5)), ClusterId(2));
    }

    #[test]
    fn overrides_take_precedence() {
        let p = Partitioner::range(4, 100).with_override(AccountId(5), ClusterId(3));
        assert_eq!(p.shard_of(AccountId(5)), ClusterId(3));
        assert_eq!(p.shard_of(AccountId(6)), ClusterId(0));
        assert!(p.owns(ClusterId(3), AccountId(5)));
        assert!(!p.owns(ClusterId(0), AccountId(5)));
    }

    #[test]
    fn account_in_shard_round_trips_for_range() {
        let p = Partitioner::range(5, 50);
        for shard in 0..5u32 {
            for i in [0u64, 1, 25, 49] {
                let a = p.account_in_shard(ClusterId(shard), i).unwrap();
                assert_eq!(p.shard_of(a), ClusterId(shard));
            }
        }
        assert!(p.account_in_shard(ClusterId(0), 50).is_none());
        assert!(p.account_in_shard(ClusterId(5), 0).is_none());
    }

    #[test]
    fn account_in_shard_round_trips_for_hash() {
        let p = Partitioner::hashed(4);
        for shard in 0..4u32 {
            for i in 0..10u64 {
                let a = p.account_in_shard(ClusterId(shard), i).unwrap();
                assert_eq!(p.shard_of(a), ClusterId(shard));
            }
        }
    }

    #[test]
    fn accounts_per_shard_reporting() {
        assert_eq!(Partitioner::range(2, 7).accounts_per_shard(), Some(7));
        assert_eq!(Partitioner::hashed(2).accounts_per_shard(), None);
        assert_eq!(Partitioner::range(2, 7).shard_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = Partitioner::hashed(0);
    }

    #[test]
    fn range_move_splits_and_merges_back() {
        let mut p = Partitioner::range(4, 100);
        assert_eq!(p.shard_of(AccountId(25)), ClusterId(0));
        // Split: move [25, 50) from shard 0 to shard 2.
        p.apply_range_move(25, 25, ClusterId(2));
        assert_eq!(p.shard_of(AccountId(24)), ClusterId(0));
        assert_eq!(p.shard_of(AccountId(25)), ClusterId(2));
        assert_eq!(p.shard_of(AccountId(49)), ClusterId(2));
        assert_eq!(p.shard_of(AccountId(50)), ClusterId(0));
        assert_eq!(p.overlays().len(), 1);
        // Merge: moving the range back to its genesis owner clears the
        // overlay and restores the original map exactly.
        p.apply_range_move(25, 25, ClusterId(0));
        assert!(p.overlays().is_empty());
        assert_eq!(p, Partitioner::range(4, 100));
    }

    #[test]
    fn overlapping_range_moves_truncate_older_overlays() {
        let mut p = Partitioner::range(4, 100);
        p.apply_range_move(10, 40, ClusterId(1));
        // A later move of the middle slice wins; the ends stay with the
        // first overlay.
        p.apply_range_move(20, 10, ClusterId(3));
        assert_eq!(p.shard_of(AccountId(15)), ClusterId(1));
        assert_eq!(p.shard_of(AccountId(25)), ClusterId(3));
        assert_eq!(p.shard_of(AccountId(35)), ClusterId(1));
        assert_eq!(p.overlays().len(), 3);
    }

    #[test]
    fn overlays_transfer_via_install() {
        let mut p = Partitioner::range(4, 100);
        p.apply_range_move(300, 50, ClusterId(0));
        let mut q = Partitioner::range(4, 100);
        q.install_overlays(p.overlays().to_vec());
        assert_eq!(p, q);
        assert_eq!(q.shard_of(AccountId(320)), ClusterId(0));
        assert_eq!(q.base_shard_of(AccountId(320)), ClusterId(3));
    }

    #[test]
    fn overrides_beat_overlays() {
        let mut p = Partitioner::range(4, 100).with_override(AccountId(30), ClusterId(3));
        p.apply_range_move(0, 100, ClusterId(1));
        assert_eq!(p.shard_of(AccountId(30)), ClusterId(3));
        assert_eq!(p.shard_of(AccountId(31)), ClusterId(1));
    }
}
