//! Mapping of accounts to shards.
//!
//! SharPer shards the data into `|P|` shards, one per cluster (§2.2). The
//! paper notes that "an appropriate sharding usually needs to have prior
//! knowledge of the data and how the data is accessed by different
//! transactions (workload-aware)". This module provides:
//!
//! * a range partitioner (the default for the evaluation workload, where the
//!   workload generator chooses accounts per shard explicitly),
//! * a hash partitioner, and
//! * explicit per-account overrides, which is how a workload-aware placement
//!   (e.g. produced by a tool like Schism \[20\]) is expressed.

use serde::{Deserialize, Serialize};
use sharper_common::{AccountId, ClusterId};
use std::collections::HashMap;

/// Strategy for the default (non-overridden) mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Strategy {
    /// Account `a` lives in shard `(a / accounts_per_shard) % shards`.
    Range { accounts_per_shard: u64 },
    /// Account `a` lives in shard `a % shards`.
    Hash,
}

/// Maps accounts to the cluster (shard) that owns them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partitioner {
    shards: u32,
    strategy: Strategy,
    /// Workload-aware overrides taking precedence over the strategy.
    overrides: HashMap<AccountId, ClusterId>,
}

impl Partitioner {
    /// Range partitioning: accounts `[0, accounts_per_shard)` in shard 0,
    /// `[accounts_per_shard, 2*accounts_per_shard)` in shard 1, and so on
    /// (wrapping around after `shards`).
    pub fn range(shards: u32, accounts_per_shard: u64) -> Self {
        assert!(shards > 0, "at least one shard is required");
        assert!(
            accounts_per_shard > 0,
            "accounts_per_shard must be positive"
        );
        Self {
            shards,
            strategy: Strategy::Range { accounts_per_shard },
            overrides: HashMap::new(),
        }
    }

    /// Hash (modulo) partitioning.
    pub fn hashed(shards: u32) -> Self {
        assert!(shards > 0, "at least one shard is required");
        Self {
            shards,
            strategy: Strategy::Hash,
            overrides: HashMap::new(),
        }
    }

    /// Adds a workload-aware override pinning `account` to `shard`.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn with_override(mut self, account: AccountId, shard: ClusterId) -> Self {
        assert!(shard.0 < self.shards, "override shard out of range");
        self.overrides.insert(account, shard);
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.shards
    }

    /// The shard that owns `account`.
    pub fn shard_of(&self, account: AccountId) -> ClusterId {
        if let Some(s) = self.overrides.get(&account) {
            return *s;
        }
        match self.strategy {
            Strategy::Range { accounts_per_shard } => {
                ClusterId(((account.0 / accounts_per_shard) % self.shards as u64) as u32)
            }
            Strategy::Hash => ClusterId((account.0 % self.shards as u64) as u32),
        }
    }

    /// Whether `account` is owned by `shard`.
    pub fn owns(&self, shard: ClusterId, account: AccountId) -> bool {
        self.shard_of(account) == shard
    }

    /// The canonical `i`-th account of a shard under range partitioning.
    ///
    /// Workload generators use this to draw accounts from a specific shard.
    /// Returns `None` if the partitioner is not range-based or `i` is outside
    /// the shard's range.
    pub fn account_in_shard(&self, shard: ClusterId, i: u64) -> Option<AccountId> {
        match self.strategy {
            Strategy::Range { accounts_per_shard } => {
                if shard.0 >= self.shards || i >= accounts_per_shard {
                    None
                } else {
                    Some(AccountId(shard.0 as u64 * accounts_per_shard + i))
                }
            }
            Strategy::Hash => {
                if shard.0 >= self.shards {
                    None
                } else {
                    Some(AccountId(i * self.shards as u64 + shard.0 as u64))
                }
            }
        }
    }

    /// Number of accounts per shard for range partitioning (`None` for hash
    /// partitioning, which is unbounded).
    pub fn accounts_per_shard(&self) -> Option<u64> {
        match self.strategy {
            Strategy::Range { accounts_per_shard } => Some(accounts_per_shard),
            Strategy::Hash => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_partitioning_assigns_contiguous_blocks() {
        let p = Partitioner::range(4, 100);
        assert_eq!(p.shard_of(AccountId(0)), ClusterId(0));
        assert_eq!(p.shard_of(AccountId(99)), ClusterId(0));
        assert_eq!(p.shard_of(AccountId(100)), ClusterId(1));
        assert_eq!(p.shard_of(AccountId(399)), ClusterId(3));
        // Wraps after the last shard.
        assert_eq!(p.shard_of(AccountId(400)), ClusterId(0));
    }

    #[test]
    fn hash_partitioning_uses_modulo() {
        let p = Partitioner::hashed(3);
        assert_eq!(p.shard_of(AccountId(0)), ClusterId(0));
        assert_eq!(p.shard_of(AccountId(4)), ClusterId(1));
        assert_eq!(p.shard_of(AccountId(5)), ClusterId(2));
    }

    #[test]
    fn overrides_take_precedence() {
        let p = Partitioner::range(4, 100).with_override(AccountId(5), ClusterId(3));
        assert_eq!(p.shard_of(AccountId(5)), ClusterId(3));
        assert_eq!(p.shard_of(AccountId(6)), ClusterId(0));
        assert!(p.owns(ClusterId(3), AccountId(5)));
        assert!(!p.owns(ClusterId(0), AccountId(5)));
    }

    #[test]
    fn account_in_shard_round_trips_for_range() {
        let p = Partitioner::range(5, 50);
        for shard in 0..5u32 {
            for i in [0u64, 1, 25, 49] {
                let a = p.account_in_shard(ClusterId(shard), i).unwrap();
                assert_eq!(p.shard_of(a), ClusterId(shard));
            }
        }
        assert!(p.account_in_shard(ClusterId(0), 50).is_none());
        assert!(p.account_in_shard(ClusterId(5), 0).is_none());
    }

    #[test]
    fn account_in_shard_round_trips_for_hash() {
        let p = Partitioner::hashed(4);
        for shard in 0..4u32 {
            for i in 0..10u64 {
                let a = p.account_in_shard(ClusterId(shard), i).unwrap();
                assert_eq!(p.shard_of(a), ClusterId(shard));
            }
        }
    }

    #[test]
    fn accounts_per_shard_reporting() {
        assert_eq!(Partitioner::range(2, 7).accounts_per_shard(), Some(7));
        assert_eq!(Partitioner::hashed(2).accounts_per_shard(), None);
        assert_eq!(Partitioner::range(2, 7).shard_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = Partitioner::hashed(0);
    }
}
