//! Account records and the per-shard account store.
//!
//! "Each account can be seen as a pair of (amount, PK) where PK is the public
//! key of the owner of the account" (§4). In the reproduction the owner is
//! recorded as a [`ClientId`]; ownership checks during validation stand in
//! for the paper's signature check against the account's public key.

use serde::{Deserialize, Serialize};
use sharper_common::{AccountId, ClientId, ClusterId, Error, Result};
use std::collections::HashMap;

/// A single account record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Account {
    /// Current balance in application units.
    pub balance: u64,
    /// The client that owns (may debit) this account.
    pub owner: ClientId,
}

/// The account records of one shard, replicated on every node of the owning
/// cluster (§2.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccountStore {
    shard: ClusterId,
    accounts: HashMap<AccountId, Account>,
    /// Account range `[start, start + len)` frozen by an in-flight reshard:
    /// client transactions touching it abort deterministically until the
    /// handover commits and the range leaves (or unfreezes on) this shard.
    frozen: Option<(u64, u64)>,
}

impl AccountStore {
    /// Creates an empty store for `shard`.
    pub fn new(shard: ClusterId) -> Self {
        Self {
            shard,
            accounts: HashMap::new(),
            frozen: None,
        }
    }

    /// The shard this store holds.
    pub fn shard(&self) -> ClusterId {
        self.shard
    }

    /// Creates (or resets) an account.
    pub fn create_account(&mut self, id: AccountId, owner: ClientId, balance: u64) {
        self.accounts.insert(id, Account { balance, owner });
    }

    /// Looks up an account.
    pub fn account(&self, id: AccountId) -> Option<&Account> {
        self.accounts.get(&id)
    }

    /// The balance of an account, if it exists in this shard.
    pub fn balance(&self, id: AccountId) -> Option<u64> {
        self.accounts.get(&id).map(|a| a.balance)
    }

    /// Whether the store holds the account.
    pub fn contains(&self, id: AccountId) -> bool {
        self.accounts.contains_key(&id)
    }

    /// Number of accounts in the shard.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// Whether the shard holds no accounts.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Sum of all balances in the shard (used by conservation-of-money
    /// invariant checks).
    pub fn total_balance(&self) -> u128 {
        self.accounts.values().map(|a| a.balance as u128).sum()
    }

    /// Debits `amount` from `id` after checking ownership and balance.
    pub fn debit(&mut self, id: AccountId, requester: ClientId, amount: u64) -> Result<()> {
        let account = self
            .accounts
            .get_mut(&id)
            .ok_or_else(|| Error::NotFound(format!("account {id} not in shard")))?;
        if account.owner != requester {
            return Err(Error::IntegrityViolation(format!(
                "client {requester} does not own account {id}"
            )));
        }
        if account.balance < amount {
            return Err(Error::IntegrityViolation(format!(
                "account {id} has balance {} < {amount}",
                account.balance
            )));
        }
        account.balance -= amount;
        Ok(())
    }

    /// Credits `amount` to `id`.
    pub fn credit(&mut self, id: AccountId, amount: u64) -> Result<()> {
        let account = self
            .accounts
            .get_mut(&id)
            .ok_or_else(|| Error::NotFound(format!("account {id} not in shard")))?;
        account.balance = account.balance.saturating_add(amount);
        Ok(())
    }

    /// Removes an account outright (resharding handover: the range leaves
    /// this shard).
    pub fn remove_account(&mut self, id: AccountId) -> Option<Account> {
        self.accounts.remove(&id)
    }

    /// Freezes the account range `[start, start + len)` for an in-flight
    /// reshard. At most one range is frozen at a time (the reshard
    /// coordinator keeps directives strictly sequential).
    pub fn set_frozen(&mut self, start: u64, len: u64) {
        self.frozen = Some((start, len));
    }

    /// Clears the frozen range (the handover committed or was abandoned).
    pub fn clear_frozen(&mut self) {
        self.frozen = None;
    }

    /// The currently frozen range, if any.
    pub fn frozen_range(&self) -> Option<(u64, u64)> {
        self.frozen
    }

    /// Whether `id` falls inside the frozen range.
    pub fn is_frozen(&self, id: AccountId) -> bool {
        matches!(self.frozen, Some((start, len)) if start <= id.0 && id.0 < start + len)
    }

    /// Iterates over all accounts (test/inspection helper).
    pub fn iter(&self) -> impl Iterator<Item = (&AccountId, &Account)> {
        self.accounts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> AccountStore {
        let mut s = AccountStore::new(ClusterId(0));
        s.create_account(AccountId(1), ClientId(10), 100);
        s.create_account(AccountId(2), ClientId(20), 50);
        s
    }

    #[test]
    fn create_and_lookup() {
        let s = store();
        assert_eq!(s.balance(AccountId(1)), Some(100));
        assert_eq!(s.account(AccountId(2)).unwrap().owner, ClientId(20));
        assert!(s.contains(AccountId(1)));
        assert!(!s.contains(AccountId(3)));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.shard(), ClusterId(0));
    }

    #[test]
    fn debit_requires_ownership_and_funds() {
        let mut s = store();
        // Wrong owner.
        assert!(s.debit(AccountId(1), ClientId(99), 10).is_err());
        // Insufficient funds.
        assert!(s.debit(AccountId(1), ClientId(10), 101).is_err());
        // Unknown account.
        assert!(s.debit(AccountId(7), ClientId(10), 1).is_err());
        // Valid debit.
        assert!(s.debit(AccountId(1), ClientId(10), 40).is_ok());
        assert_eq!(s.balance(AccountId(1)), Some(60));
    }

    #[test]
    fn credit_and_total_balance() {
        let mut s = store();
        assert_eq!(s.total_balance(), 150);
        s.credit(AccountId(2), 25).unwrap();
        assert_eq!(s.balance(AccountId(2)), Some(75));
        assert_eq!(s.total_balance(), 175);
        assert!(s.credit(AccountId(9), 1).is_err());
    }

    #[test]
    fn credit_saturates_instead_of_overflowing() {
        let mut s = AccountStore::new(ClusterId(1));
        s.create_account(AccountId(1), ClientId(1), u64::MAX - 1);
        s.credit(AccountId(1), 10).unwrap();
        assert_eq!(s.balance(AccountId(1)), Some(u64::MAX));
    }

    #[test]
    fn failed_debit_does_not_change_state() {
        let mut s = store();
        let before = s.clone();
        let _ = s.debit(AccountId(1), ClientId(10), 1000);
        assert_eq!(s, before);
    }

    #[test]
    fn frozen_range_covers_exactly_its_accounts() {
        let mut s = store();
        assert!(s.frozen_range().is_none());
        assert!(!s.is_frozen(AccountId(1)));
        s.set_frozen(1, 1);
        assert_eq!(s.frozen_range(), Some((1, 1)));
        assert!(s.is_frozen(AccountId(1)));
        assert!(!s.is_frozen(AccountId(0)));
        assert!(!s.is_frozen(AccountId(2)));
        s.clear_frozen();
        assert!(!s.is_frozen(AccountId(1)));
    }

    #[test]
    fn remove_account_returns_the_record() {
        let mut s = store();
        let removed = s.remove_account(AccountId(1)).unwrap();
        assert_eq!(removed.balance, 100);
        assert_eq!(removed.owner, ClientId(10));
        assert!(!s.contains(AccountId(1)));
        assert!(s.remove_account(AccountId(1)).is_none());
    }
}
