//! Calibrated latency and CPU-cost model used by the discrete-event simulator.
//!
//! The paper's evaluation (§4) ran on AWS EC2 c4.2xlarge instances. We do not
//! have that testbed, so the simulator replaces it with two models:
//!
//! * [`LatencyModel`] — one-way network delays between clients and replicas,
//!   between replicas of the same cluster (the paper places geographically
//!   close nodes in the same cluster, §2.2) and between replicas of different
//!   clusters.
//! * [`CostModel`] — the CPU time a replica spends handling each message
//!   (deserialisation, digest computation, signature generation/verification
//!   for the Byzantine model, execution of a transfer). Each replica is
//!   modelled as a single-server queue, so the replica handling the most
//!   messages per transaction (the primary) becomes the bottleneck and the
//!   system saturates — exactly the effect that shapes the throughput/latency
//!   curves in Figures 6–8.
//!
//! The default numbers are calibrated so the simulated 4-cluster crash-only
//! deployment saturates in the tens of thousands of transactions per second,
//! the same order of magnitude as the paper. Absolute values are not the
//! claim under test; all systems share one model so relative comparisons are
//! preserved.

use crate::config::FailureModel;
use crate::time::Duration;
use serde::{Deserialize, Serialize};

/// One-way network latencies (plus jitter bound) for the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// One-way latency between a client and any replica, in microseconds.
    pub client_to_node_us: u64,
    /// One-way latency between two replicas of the same cluster.
    pub intra_cluster_us: u64,
    /// One-way latency between replicas of different clusters.
    pub cross_cluster_us: u64,
    /// Maximum uniform jitter added to every message, in microseconds.
    pub jitter_us: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // Clusters are formed from geographically close nodes (§2.2): links
        // inside a cluster are LAN-like, links across clusters are WAN-like,
        // clients sit near their home cluster.
        Self {
            client_to_node_us: 2_000,
            intra_cluster_us: 500,
            cross_cluster_us: 10_000,
            jitter_us: 200,
        }
    }
}

impl LatencyModel {
    /// A model with every latency set to zero; useful for unit tests that
    /// only care about message ordering.
    pub fn zero() -> Self {
        Self {
            client_to_node_us: 0,
            intra_cluster_us: 0,
            cross_cluster_us: 0,
            jitter_us: 0,
        }
    }

    /// A LAN-only model (everything co-located), used by micro-benchmarks.
    pub fn lan() -> Self {
        Self {
            client_to_node_us: 200,
            intra_cluster_us: 100,
            cross_cluster_us: 100,
            jitter_us: 20,
        }
    }

    /// The base one-way latency for a link of the given kind.
    pub fn base(&self, kind: LinkKind) -> Duration {
        let us = match kind {
            LinkKind::ClientToNode => self.client_to_node_us,
            LinkKind::IntraCluster => self.intra_cluster_us,
            LinkKind::CrossCluster => self.cross_cluster_us,
            LinkKind::Local => 0,
        };
        Duration::from_micros(us)
    }
}

/// The kind of link a message travels over, from the latency model's point of
/// view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Client ↔ replica.
    ClientToNode,
    /// Replica ↔ replica inside one cluster.
    IntraCluster,
    /// Replica ↔ replica across clusters.
    CrossCluster,
    /// A node sending a message to itself (no network traversal).
    Local,
}

/// Per-message CPU costs charged at the receiving replica.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Base cost of receiving, parsing and dispatching any protocol message.
    pub message_handling_us: u64,
    /// Additional cost of computing a message/block digest.
    pub digest_us: u64,
    /// Additional cost of generating a signature (Byzantine model only).
    pub sign_us: u64,
    /// Additional cost of verifying a signature (Byzantine model only).
    pub verify_us: u64,
    /// Cost of validating and executing one transfer transaction against the
    /// account store and appending the block to the ledger.
    pub execute_us: u64,
    /// Cost charged at a client for preparing/submitting a request and for
    /// processing a reply.
    pub client_us: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            message_handling_us: 11,
            digest_us: 2,
            sign_us: 18,
            verify_us: 22,
            execute_us: 6,
            client_us: 2,
        }
    }
}

impl CostModel {
    /// A model with every cost set to zero; useful for logic-only tests.
    pub fn zero() -> Self {
        Self {
            message_handling_us: 0,
            digest_us: 0,
            sign_us: 0,
            verify_us: 0,
            execute_us: 0,
            client_us: 0,
        }
    }

    /// The cost of handling one protocol message that carries `signatures`
    /// signatures to verify and requires `signs` new signatures, under the
    /// given failure model. Signature costs are only charged for the
    /// Byzantine model (§2.1: crash-only deployments do not sign messages).
    pub fn protocol_message(
        &self,
        model: FailureModel,
        signatures_to_verify: usize,
        signatures_to_create: usize,
    ) -> Duration {
        let mut us = self.message_handling_us + self.digest_us;
        if model.requires_signatures() {
            us += self.verify_us * signatures_to_verify as u64;
            us += self.sign_us * signatures_to_create as u64;
        }
        Duration::from_micros(us)
    }

    /// The cost of executing a transaction and appending its block.
    pub fn execution(&self) -> Duration {
        Duration::from_micros(self.execute_us + self.digest_us)
    }

    /// The cost of executing a committed batch of `n` transactions and
    /// appending its block: per-transaction execution plus a single block
    /// digest — the digest is amortised over the whole batch because the
    /// block commits to the batch's Merkle root.
    pub fn execution_batch(&self, n: usize) -> Duration {
        Duration::from_micros(self.execute_us * n as u64 + self.digest_us)
    }

    /// The modelled cost of a *scheduled* (partitioned-parallel) batch apply.
    ///
    /// The executor scheduler expresses a batch as abstract work units
    /// (`units_per_tx` per transaction, split across per-partition queues) and
    /// reports the critical-path length `makespan_units` of its plan. Since
    /// one serial transaction costs `execute_us`, one unit costs
    /// `execute_us / units_per_tx` and the modelled wall time of the parallel
    /// apply is the makespan times the unit cost plus the single block digest.
    /// Rounding is upward so a schedule never models cheaper than its
    /// critical path.
    ///
    /// This is used by the executor benchmark (`figures --fig exec`) to model
    /// apply-path speedups; the simulation pipeline itself always charges
    /// [`CostModel::execution_batch`] so that partitioning cannot perturb
    /// golden seeds.
    pub fn execution_batch_scheduled(&self, makespan_units: u64, units_per_tx: u64) -> Duration {
        let per_tx = units_per_tx.max(1);
        let exec_us = (self.execute_us * makespan_units).div_ceil(per_tx);
        Duration::from_micros(exec_us + self.digest_us)
    }

    /// The cost of verifying one signature (zero in the crash model, which
    /// does not sign messages).
    pub fn verification(&self, model: FailureModel) -> Duration {
        if model.requires_signatures() {
            Duration::from_micros(self.verify_us)
        } else {
            Duration::ZERO
        }
    }

    /// The cost charged at the client per request or reply.
    pub fn client(&self) -> Duration {
        Duration::from_micros(self.client_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive_and_ordered() {
        let lat = LatencyModel::default();
        assert!(lat.cross_cluster_us > lat.intra_cluster_us);
        assert!(lat.client_to_node_us > 0);
        let cost = CostModel::default();
        assert!(cost.verify_us > 0 && cost.sign_us > 0);
    }

    #[test]
    fn link_kinds_map_to_latencies() {
        let lat = LatencyModel::default();
        assert_eq!(lat.base(LinkKind::Local), Duration::ZERO);
        assert_eq!(
            lat.base(LinkKind::IntraCluster),
            Duration::from_micros(lat.intra_cluster_us)
        );
        assert_eq!(
            lat.base(LinkKind::CrossCluster),
            Duration::from_micros(lat.cross_cluster_us)
        );
        assert_eq!(
            lat.base(LinkKind::ClientToNode),
            Duration::from_micros(lat.client_to_node_us)
        );
    }

    #[test]
    fn crash_model_never_pays_for_signatures() {
        let cost = CostModel::default();
        let crash = cost.protocol_message(FailureModel::Crash, 5, 5);
        let byz = cost.protocol_message(FailureModel::Byzantine, 5, 5);
        assert!(byz > crash);
        assert_eq!(
            crash,
            Duration::from_micros(cost.message_handling_us + cost.digest_us)
        );
    }

    #[test]
    fn byzantine_cost_scales_with_signature_count() {
        let cost = CostModel::default();
        let one = cost.protocol_message(FailureModel::Byzantine, 1, 1);
        let three = cost.protocol_message(FailureModel::Byzantine, 3, 1);
        assert_eq!(three.as_micros() - one.as_micros(), 2 * cost.verify_us);
    }

    #[test]
    fn scheduled_batch_cost_tracks_the_critical_path() {
        let cost = CostModel::default();
        // A perfectly serial plan (makespan = 3 units × n txs) costs the same
        // as the flat batched apply.
        for n in [1usize, 4, 16] {
            assert_eq!(
                cost.execution_batch_scheduled(3 * n as u64, 3),
                cost.execution_batch(n)
            );
        }
        // A plan that halves the critical path halves the execution part.
        let serial = cost.execution_batch_scheduled(48, 3);
        let parallel = cost.execution_batch_scheduled(24, 3);
        assert_eq!(
            serial.as_micros() - cost.digest_us,
            2 * (parallel.as_micros() - cost.digest_us)
        );
        // Rounds up: 1 unit of a 3-unit tx is charged at least 1µs × rate.
        let tiny = cost.execution_batch_scheduled(1, 3);
        assert!(tiny.as_micros() > cost.digest_us);
    }

    #[test]
    fn zero_models_are_free() {
        let cost = CostModel::zero();
        assert_eq!(
            cost.protocol_message(FailureModel::Byzantine, 10, 10),
            Duration::ZERO
        );
        assert_eq!(cost.execution(), Duration::ZERO);
        let lat = LatencyModel::zero();
        assert_eq!(lat.base(LinkKind::CrossCluster), Duration::ZERO);
    }
}
