//! System configuration: failure model, cluster formation and quorum sizes.
//!
//! SharPer (§2.2) partitions `N` nodes into clusters of exactly `2f + 1`
//! crash-only or `3f + 1` Byzantine nodes and assigns one data shard per
//! cluster. This module captures that partitioning, the derived quorum sizes
//! used by the intra-shard and cross-shard protocols (§3), and the
//! group-aware clustering optimisation of §3.4.

use crate::error::{Error, Result};
use crate::ids::{ClusterId, NodeId};
use crate::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// How a primary groups client transactions into blocks.
///
/// The paper's base protocol puts a single transaction in every block
/// (§2.3), which caps throughput at the consensus round rate. The batching
/// layer lets the primary accumulate up to [`max_batch_size`] pending
/// requests and order them as one Merkle-committed block per round.
///
/// `max_batch_size = 1` preserves the paper's per-round semantics exactly:
/// every request is proposed the moment it arrives and no batch timer is
/// ever armed.
///
/// [`max_batch_size`]: BatchConfig::max_batch_size
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Maximum number of transactions per block. A full queue is flushed
    /// immediately; `1` disables batching.
    pub max_batch_size: usize,
    /// How long a partially filled batch may wait for more transactions
    /// before the primary proposes it anyway. Irrelevant when
    /// `max_batch_size` is `1` (batches are always "full").
    pub batch_timeout: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch_size: 1,
            batch_timeout: Duration::from_millis(2),
        }
    }
}

impl BatchConfig {
    /// A batching configuration with the given batch size and the default
    /// timeout.
    pub fn with_size(max_batch_size: usize) -> Self {
        Self {
            max_batch_size: max_batch_size.max(1),
            ..Self::default()
        }
    }

    /// Whether batching is enabled (more than one transaction per block).
    pub fn enabled(&self) -> bool {
        self.max_batch_size > 1
    }
}

/// How many worker threads the discrete-event simulator uses.
///
/// SharPer's clusters only interact through cross-cluster links with a
/// known minimum latency, so the simulator can run one worker per cluster
/// as a *conservative parallel* discrete-event simulation (lookahead = the
/// minimum cross-lane link latency) and still produce results that are
/// bit-identical to a sequential run. The mode only selects the execution
/// strategy — never the outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ThreadMode {
    /// One worker processes every event in global timestamp order.
    #[default]
    Sequential,
    /// One worker per cluster (clients run on their home cluster's worker).
    PerCluster,
    /// A fixed number of workers; clusters are assigned round-robin.
    /// `Fixed(0)` and `Fixed(1)` behave like [`ThreadMode::Sequential`].
    Fixed(usize),
}

impl ThreadMode {
    /// Parses a command-line value: `seq`/`sequential`/`0`/`1` → sequential,
    /// `per-cluster`/`percluster` → one worker per cluster, `N` → fixed.
    pub fn parse(s: &str) -> Result<Self> {
        match s.to_ascii_lowercase().as_str() {
            "seq" | "sequential" => Ok(ThreadMode::Sequential),
            "per-cluster" | "percluster" => Ok(ThreadMode::PerCluster),
            other => match other.parse::<usize>() {
                Ok(0) | Ok(1) => Ok(ThreadMode::Sequential),
                Ok(n) => Ok(ThreadMode::Fixed(n)),
                Err(_) => Err(Error::InvalidConfig(format!(
                    "invalid thread mode {s:?}: expected `sequential`, `per-cluster` or a count"
                ))),
            },
        }
    }

    /// Whether this mode may run more than one worker.
    pub fn is_parallel(self) -> bool {
        !matches!(self, ThreadMode::Sequential | ThreadMode::Fixed(0 | 1))
    }
}

impl fmt::Display for ThreadMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadMode::Sequential => write!(f, "sequential"),
            ThreadMode::PerCluster => write!(f, "per-cluster"),
            ThreadMode::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// How each replica executes committed batches against its application state.
///
/// `partitions` splits the shard's account store into that many account-range
/// partitions behind a `PartitionedStore`; the executor scheduler then runs
/// sub-batches touching disjoint partitions on up to `exec_threads` workers.
/// Like every other [`SimConfig`] knob, this must never change results:
/// partitioned-parallel apply is required to be bit-identical to serial apply
/// (outcomes, replies, ledger digest), which the golden-digest gate enforces.
/// `partitions = 1` reproduces the seed's serial executor exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecutorConfig {
    /// Number of account-range partitions per shard (`1` = serial apply).
    pub partitions: usize,
    /// Number of worker threads the partitioned executor may use.
    /// `0` and `1` run the partitioned schedule on the calling thread.
    pub exec_threads: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            partitions: 1,
            exec_threads: 1,
        }
    }
}

impl ExecutorConfig {
    /// A partitioned executor configuration.
    pub fn partitioned(partitions: usize, exec_threads: usize) -> Self {
        Self {
            partitions: partitions.max(1),
            exec_threads: exec_threads.max(1),
        }
    }

    /// Whether committed batches run through the partitioned scheduler.
    pub fn is_partitioned(&self) -> bool {
        self.partitions > 1
    }
}

/// How each replica's ledger view retains committed history.
///
/// With the default (`checkpoint_interval = 0`) a view keeps every block
/// forever, reproducing the seed exactly. With checkpointing enabled, blocks
/// whose integrity has been re-verified (the incremental audit) are folded
/// into a rolling digest chain and pruned, keeping only the most recent
/// `retain_blocks` blocks resident. Like every other [`SimConfig`] knob this
/// must never change simulated results: pruning is a pure function of chain
/// length, every consensus-visible query answers identically before and after
/// truncation, and `ledger_digest()` stays bit-identical to the unpruned run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LedgerConfig {
    /// Fold-and-prune cadence, in blocks beyond `retain_blocks` that may
    /// accumulate before the next truncation. `0` disables truncation
    /// entirely (retain everything — the default).
    pub checkpoint_interval: usize,
    /// Number of recent blocks kept resident once truncation is enabled.
    /// The head block is always retained regardless of this value.
    pub retain_blocks: usize,
}

impl Default for LedgerConfig {
    fn default() -> Self {
        Self::retain_all()
    }
}

impl LedgerConfig {
    /// Retain the full chain (the seed's behaviour).
    pub fn retain_all() -> Self {
        Self {
            checkpoint_interval: 0,
            retain_blocks: usize::MAX,
        }
    }

    /// A truncating configuration: audit + prune every `checkpoint_interval`
    /// blocks past the `retain_blocks` resident window.
    pub fn checkpointed(checkpoint_interval: usize, retain_blocks: usize) -> Self {
        Self {
            checkpoint_interval: checkpoint_interval.max(1),
            retain_blocks: retain_blocks.max(1),
        }
    }

    /// Whether truncation is enabled at all.
    pub fn is_truncating(&self) -> bool {
        self.checkpoint_interval > 0
    }
}

/// Simulator execution configuration (independent of the modelled system:
/// none of these knobs may change simulation results, only how fast the
/// simulator produces them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimConfig {
    /// Worker threading mode of the discrete-event engine.
    pub threads: ThreadMode,
    /// How replicas execute committed batches (serial or partitioned).
    pub exec: ExecutorConfig,
    /// How replica ledger views retain committed history (bounded-memory
    /// truncation behind the audit watermark, or the default retain-all).
    pub ledger: LedgerConfig,
    /// Whether the deterministic trace plane records events. Tracing only
    /// observes — it charges no cost, sends nothing and draws no randomness —
    /// so toggling it never changes results (see `sharper_common::obs`).
    pub trace: bool,
}

impl SimConfig {
    /// A configuration running one worker per cluster.
    pub fn per_cluster() -> Self {
        Self {
            threads: ThreadMode::PerCluster,
            ..Self::default()
        }
    }

    /// A configuration with an explicit thread mode.
    pub fn with_threads(threads: ThreadMode) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// Sets the executor configuration (builder style).
    pub fn with_executor(mut self, exec: ExecutorConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Sets the ledger retention configuration (builder style).
    pub fn with_ledger(mut self, ledger: LedgerConfig) -> Self {
        self.ledger = ledger;
        self
    }

    /// Enables or disables trace recording (builder style).
    pub fn with_tracing(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }
}

/// A scheduled range move for deterministic reshard tests: at `at` sim-time
/// the coordinator issues a directive moving `[start, start + len)` to
/// cluster `to`, regardless of observed load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForcedMove {
    /// Sim-time offset (from run start) at which the move is issued.
    pub at: Duration,
    /// First account of the moved range.
    pub start: u64,
    /// Number of consecutive accounts moved.
    pub len: u64,
    /// Destination cluster id.
    pub to: u32,
}

/// Online resharding: load-driven shard split/merge via an epoch'd shard map.
///
/// When enabled (crash model only), primaries report per-bucket commit
/// counts to the reshard coordinator (cluster 0's primary), which issues
/// split directives moving hot buckets to under-loaded clusters and merge
/// directives returning cooled-off buckets to their genesis owner. Each
/// directive executes as a freeze + cross-shard handover transaction, so
/// reconfiguration is ordered, committed and audited like any other block —
/// and, like every protocol input, is a deterministic function of the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReshardConfig {
    /// Master switch; everything below is inert when false.
    pub enabled: bool,
    /// Number of load-tracking buckets per shard (the granularity of range
    /// moves: each bucket is `accounts_per_shard / buckets_per_shard`
    /// consecutive accounts).
    pub buckets_per_shard: u64,
    /// How often primaries report per-bucket load to the coordinator.
    pub report_interval: Duration,
    /// How often the coordinator evaluates split/merge decisions.
    pub check_interval: Duration,
    /// A bucket is split away when its load exceeds `split_factor ×` the
    /// mean bucket load across the system.
    pub split_factor: f64,
    /// A displaced bucket merges home when its load falls below
    /// `merge_factor ×` the mean bucket load.
    pub merge_factor: f64,
    /// Scripted moves executed at fixed sim times (deterministic golden /
    /// property tests); load-driven decisions still apply unless the factors
    /// are set out of reach.
    pub forced: Vec<ForcedMove>,
}

impl Default for ReshardConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            buckets_per_shard: 8,
            report_interval: Duration::from_millis(250),
            check_interval: Duration::from_millis(500),
            split_factor: 2.0,
            merge_factor: 0.5,
            forced: Vec::new(),
        }
    }
}

impl ReshardConfig {
    /// An enabled configuration with the default thresholds.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// An enabled configuration that only executes the given scripted moves
    /// (load-driven decisions are disabled by unreachable thresholds).
    pub fn forced_only(forced: Vec<ForcedMove>) -> Self {
        Self {
            enabled: true,
            split_factor: f64::INFINITY,
            merge_factor: 0.0,
            forced,
            ..Self::default()
        }
    }
}

/// The failure model followed by the replicas (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureModel {
    /// Nodes may fail by stopping (and possibly restarting) but never lie.
    /// Clusters need `2f + 1` nodes and quorums of `f + 1`.
    Crash,
    /// Nodes may behave arbitrarily (equivocate, forge application data,
    /// stay silent). Clusters need `3f + 1` nodes and quorums of `2f + 1`.
    Byzantine,
}

impl FailureModel {
    /// The minimum cluster size required to tolerate `f` simultaneous
    /// failures under this model.
    pub fn cluster_size(self, f: usize) -> usize {
        match self {
            FailureModel::Crash => 2 * f + 1,
            FailureModel::Byzantine => 3 * f + 1,
        }
    }

    /// The per-cluster quorum used by both the intra-shard protocol and each
    /// involved cluster of the flattened cross-shard protocol (§3.2–§3.3).
    pub fn quorum(self, f: usize) -> usize {
        match self {
            FailureModel::Crash => f + 1,
            FailureModel::Byzantine => 2 * f + 1,
        }
    }

    /// Whether messages must carry signatures under this model (§2.1).
    pub fn requires_signatures(self) -> bool {
        matches!(self, FailureModel::Byzantine)
    }
}

impl fmt::Display for FailureModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureModel::Crash => write!(f, "crash"),
            FailureModel::Byzantine => write!(f, "byzantine"),
        }
    }
}

/// Which primary initiates a cross-shard transaction (§3.2, "super primary").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum InitiationPolicy {
    /// Any involved cluster that received the client request initiates the
    /// transaction. Concurrent conflicting initiations are resolved by
    /// timers and retries.
    AnyInvolvedCluster,
    /// The primary of the involved cluster with the minimum identifier
    /// initiates every cross-shard transaction over that cluster set. This is
    /// the paper's super-primary optimisation, which removes most conflicts.
    #[default]
    SuperPrimary,
}

/// Configuration of a single cluster: its members and its fault budget.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// The cluster identifier (doubles as the shard identifier).
    pub id: ClusterId,
    /// Members of the cluster, in primary-election order: the primary of view
    /// `v` is `nodes[v % nodes.len()]`.
    pub nodes: Vec<NodeId>,
    /// The number of simultaneous faults this cluster tolerates.
    pub f: usize,
}

impl ClusterConfig {
    /// Creates a cluster configuration, validating the size against the
    /// failure model.
    pub fn new(id: ClusterId, nodes: Vec<NodeId>, f: usize, model: FailureModel) -> Result<Self> {
        let required = model.cluster_size(f);
        if nodes.len() < required {
            return Err(Error::InvalidConfig(format!(
                "cluster {id} has {} nodes but needs at least {required} for f={f} under the {model} model",
                nodes.len()
            )));
        }
        Ok(Self { id, nodes, f })
    }

    /// Number of replicas in this cluster.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// The primary for a given view number.
    pub fn primary_of_view(&self, view: u64) -> NodeId {
        self.nodes[(view as usize) % self.nodes.len()]
    }

    /// The quorum size of this cluster under the given failure model.
    pub fn quorum(&self, model: FailureModel) -> usize {
        model.quorum(self.f)
    }

    /// Whether `node` is a member of this cluster.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }
}

/// A group of nodes with a known, group-specific fault budget (§3.4).
///
/// The clustered-network optimisation observes that if the network is made of
/// groups (e.g. different cloud providers) with individually known `f`, the
/// nodes of each group can be clustered independently, yielding more (and
/// therefore more parallel) clusters than clustering the union with the
/// global worst-case `f`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterGroup {
    /// Human-readable name of the group (e.g. the cloud provider).
    pub name: String,
    /// How many nodes the group contributes.
    pub nodes: usize,
    /// The maximum number of simultaneous faults within this group.
    pub f: usize,
}

/// A description of how the whole network is partitioned into clusters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterLayout {
    /// `clusters` clusters, each sized for the global fault budget `f`.
    Uniform {
        /// Number of clusters to form.
        clusters: usize,
        /// Global per-cluster fault budget.
        f: usize,
    },
    /// Group-aware clustering (§3.4): each group is clustered independently
    /// with its own fault budget.
    Grouped {
        /// The groups making up the network.
        groups: Vec<ClusterGroup>,
    },
}

impl ClusterLayout {
    /// The total number of nodes this layout requires under `model`.
    pub fn total_nodes(&self, model: FailureModel) -> usize {
        match self {
            ClusterLayout::Uniform { clusters, f } => clusters * model.cluster_size(*f),
            ClusterLayout::Grouped { groups } => groups.iter().map(|g| g.nodes).sum(),
        }
    }

    /// The number of clusters this layout produces under `model`.
    ///
    /// For grouped layouts this is `Σ_g ⌊n_g / size(f_g)⌋`, as in the paper's
    /// example (`n_A = 7, f_A = 2` and `n_B = 16, f_B = 1` gives `1 + 4 = 5`
    /// Byzantine clusters instead of the 2 obtained with the global `f = 3`).
    pub fn cluster_count(&self, model: FailureModel) -> usize {
        match self {
            ClusterLayout::Uniform { clusters, .. } => *clusters,
            ClusterLayout::Grouped { groups } => groups
                .iter()
                .map(|g| g.nodes / model.cluster_size(g.f))
                .sum(),
        }
    }
}

/// The full system configuration shared by every component of the system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// The failure model of all replicas.
    pub failure_model: FailureModel,
    /// The clusters, keyed by identifier (iteration order is by id).
    clusters: BTreeMap<ClusterId, ClusterConfig>,
    /// Reverse index: node → owning cluster.
    node_cluster: BTreeMap<NodeId, ClusterId>,
    /// Which primary initiates cross-shard transactions.
    pub initiation_policy: InitiationPolicy,
}

impl SystemConfig {
    /// Builds a uniform configuration: `clusters` clusters, each with the
    /// minimum number of nodes for fault budget `f` under `model`, nodes
    /// numbered consecutively (`n0, n1, ...`).
    ///
    /// This matches the paper's evaluation deployments, e.g. 4 clusters of 3
    /// crash-only nodes (12 nodes, Fig. 6) or 4 clusters of 4 Byzantine nodes
    /// (16 nodes, Fig. 7).
    pub fn uniform(model: FailureModel, clusters: usize, f: usize) -> Result<Self> {
        if clusters == 0 {
            return Err(Error::InvalidConfig(
                "at least one cluster is required".into(),
            ));
        }
        let size = model.cluster_size(f);
        let mut cfgs = Vec::with_capacity(clusters);
        let mut next = 0u32;
        for c in 0..clusters {
            let nodes: Vec<NodeId> = (0..size)
                .map(|_| {
                    let id = NodeId(next);
                    next += 1;
                    id
                })
                .collect();
            cfgs.push(ClusterConfig::new(ClusterId(c as u32), nodes, f, model)?);
        }
        Self::from_clusters(model, cfgs, InitiationPolicy::default())
    }

    /// Builds a configuration from an explicit [`ClusterLayout`].
    pub fn from_layout(model: FailureModel, layout: &ClusterLayout) -> Result<Self> {
        match layout {
            ClusterLayout::Uniform { clusters, f } => Self::uniform(model, *clusters, *f),
            ClusterLayout::Grouped { groups } => {
                let mut cfgs = Vec::new();
                let mut next_node = 0u32;
                let mut next_cluster = 0u32;
                for group in groups {
                    let size = model.cluster_size(group.f);
                    let whole_clusters = group.nodes / size;
                    if whole_clusters == 0 {
                        return Err(Error::InvalidConfig(format!(
                            "group '{}' has {} nodes, fewer than the {} required for f={} under the {} model",
                            group.name, group.nodes, size, group.f, model
                        )));
                    }
                    let mut remaining = group.nodes;
                    for k in 0..whole_clusters {
                        // The paper notes the last cluster may absorb leftover nodes.
                        let take = if k + 1 == whole_clusters {
                            remaining
                        } else {
                            size
                        };
                        let nodes: Vec<NodeId> = (0..take)
                            .map(|_| {
                                let id = NodeId(next_node);
                                next_node += 1;
                                id
                            })
                            .collect();
                        remaining -= take;
                        cfgs.push(ClusterConfig::new(
                            ClusterId(next_cluster),
                            nodes,
                            group.f,
                            model,
                        )?);
                        next_cluster += 1;
                    }
                }
                Self::from_clusters(model, cfgs, InitiationPolicy::default())
            }
        }
    }

    /// Builds a configuration from explicit cluster descriptions.
    pub fn from_clusters(
        model: FailureModel,
        clusters: Vec<ClusterConfig>,
        initiation_policy: InitiationPolicy,
    ) -> Result<Self> {
        if clusters.is_empty() {
            return Err(Error::InvalidConfig(
                "at least one cluster is required".into(),
            ));
        }
        let mut by_id = BTreeMap::new();
        let mut node_cluster = BTreeMap::new();
        for cluster in clusters {
            let required = model.cluster_size(cluster.f);
            if cluster.nodes.len() < required {
                return Err(Error::InvalidConfig(format!(
                    "cluster {} has {} nodes but needs {} under the {} model",
                    cluster.id,
                    cluster.nodes.len(),
                    required,
                    model
                )));
            }
            for &node in &cluster.nodes {
                if node_cluster.insert(node, cluster.id).is_some() {
                    return Err(Error::InvalidConfig(format!(
                        "node {node} appears in more than one cluster"
                    )));
                }
            }
            if by_id.insert(cluster.id, cluster).is_some() {
                return Err(Error::InvalidConfig("duplicate cluster id".into()));
            }
        }
        Ok(Self {
            failure_model: model,
            clusters: by_id,
            node_cluster,
            initiation_policy,
        })
    }

    /// Sets the cross-shard initiation policy (builder style).
    pub fn with_initiation_policy(mut self, policy: InitiationPolicy) -> Self {
        self.initiation_policy = policy;
        self
    }

    /// Number of clusters (= number of shards).
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Total number of replicas across all clusters.
    pub fn node_count(&self) -> usize {
        self.node_cluster.len()
    }

    /// All cluster identifiers in ascending order.
    pub fn cluster_ids(&self) -> impl Iterator<Item = ClusterId> + '_ {
        self.clusters.keys().copied()
    }

    /// All node identifiers in ascending order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_cluster.keys().copied()
    }

    /// The configuration of a cluster.
    pub fn cluster(&self, id: ClusterId) -> Result<&ClusterConfig> {
        self.clusters.get(&id).ok_or(Error::UnknownCluster(id))
    }

    /// The cluster a node belongs to.
    pub fn cluster_of(&self, node: NodeId) -> Result<ClusterId> {
        self.node_cluster
            .get(&node)
            .copied()
            .ok_or(Error::UnknownNode(node))
    }

    /// The members of a cluster.
    pub fn members(&self, id: ClusterId) -> Result<&[NodeId]> {
        Ok(&self.cluster(id)?.nodes)
    }

    /// The primary of cluster `id` in view `view`.
    pub fn primary(&self, id: ClusterId, view: u64) -> Result<NodeId> {
        Ok(self.cluster(id)?.primary_of_view(view))
    }

    /// The per-cluster quorum (`f+1` crash, `2f+1` Byzantine) of cluster `id`.
    pub fn quorum(&self, id: ClusterId) -> Result<usize> {
        let c = self.cluster(id)?;
        Ok(c.quorum(self.failure_model))
    }

    /// The cluster responsible for initiating a cross-shard transaction over
    /// `involved` under the configured [`InitiationPolicy`].
    ///
    /// Under [`InitiationPolicy::SuperPrimary`] this is the involved cluster
    /// with the minimum identifier (§3.2). Under
    /// [`InitiationPolicy::AnyInvolvedCluster`] the caller's preference
    /// (`received_by`) wins, as long as it is involved.
    pub fn initiator_cluster(
        &self,
        involved: &[ClusterId],
        received_by: Option<ClusterId>,
    ) -> Result<ClusterId> {
        if involved.is_empty() {
            return Err(Error::InvalidConfig(
                "a cross-shard transaction must involve at least one cluster".into(),
            ));
        }
        for c in involved {
            self.cluster(*c)?;
        }
        match self.initiation_policy {
            InitiationPolicy::SuperPrimary => Ok(*involved.iter().min().expect("non-empty")),
            InitiationPolicy::AnyInvolvedCluster => match received_by {
                Some(c) if involved.contains(&c) => Ok(c),
                _ => Ok(*involved.iter().min().expect("non-empty")),
            },
        }
    }

    /// All members of all the given clusters (deduplicated, sorted).
    pub fn members_of_all(&self, clusters: &[ClusterId]) -> Result<Vec<NodeId>> {
        let mut out = Vec::new();
        for &c in clusters {
            out.extend_from_slice(self.members(c)?);
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_config_defaults_to_paper_semantics() {
        let cfg = BatchConfig::default();
        assert_eq!(cfg.max_batch_size, 1);
        assert!(!cfg.enabled());
        assert!(cfg.batch_timeout > Duration::ZERO);
        let batched = BatchConfig::with_size(16);
        assert!(batched.enabled());
        assert_eq!(batched.max_batch_size, 16);
        // A nonsensical size of 0 clamps to the unbatched protocol.
        assert_eq!(BatchConfig::with_size(0).max_batch_size, 1);
    }

    #[test]
    fn failure_model_sizes_and_quorums() {
        assert_eq!(FailureModel::Crash.cluster_size(1), 3);
        assert_eq!(FailureModel::Crash.quorum(1), 2);
        assert_eq!(FailureModel::Byzantine.cluster_size(1), 4);
        assert_eq!(FailureModel::Byzantine.quorum(1), 3);
        assert_eq!(FailureModel::Byzantine.cluster_size(3), 10);
        assert!(!FailureModel::Crash.requires_signatures());
        assert!(FailureModel::Byzantine.requires_signatures());
    }

    #[test]
    fn uniform_config_matches_paper_deployments() {
        // Fig. 6: 12 crash-only nodes, 4 clusters of 3, f = 1.
        let crash = SystemConfig::uniform(FailureModel::Crash, 4, 1).unwrap();
        assert_eq!(crash.cluster_count(), 4);
        assert_eq!(crash.node_count(), 12);
        assert_eq!(crash.quorum(ClusterId(0)).unwrap(), 2);

        // Fig. 7: 16 Byzantine nodes, 4 clusters of 4, f = 1 (also Fig. 1).
        let byz = SystemConfig::uniform(FailureModel::Byzantine, 4, 1).unwrap();
        assert_eq!(byz.cluster_count(), 4);
        assert_eq!(byz.node_count(), 16);
        assert_eq!(byz.quorum(ClusterId(3)).unwrap(), 3);
    }

    #[test]
    fn node_to_cluster_mapping_is_consistent() {
        let cfg = SystemConfig::uniform(FailureModel::Byzantine, 3, 1).unwrap();
        for cluster in cfg.cluster_ids() {
            for &node in cfg.members(cluster).unwrap() {
                assert_eq!(cfg.cluster_of(node).unwrap(), cluster);
            }
        }
        assert!(cfg.cluster_of(NodeId(999)).is_err());
        assert!(cfg.cluster(ClusterId(99)).is_err());
    }

    #[test]
    fn primary_rotates_with_view() {
        let cfg = SystemConfig::uniform(FailureModel::Crash, 1, 1).unwrap();
        let members = cfg.members(ClusterId(0)).unwrap().to_vec();
        assert_eq!(cfg.primary(ClusterId(0), 0).unwrap(), members[0]);
        assert_eq!(cfg.primary(ClusterId(0), 1).unwrap(), members[1]);
        assert_eq!(cfg.primary(ClusterId(0), 3).unwrap(), members[0]);
    }

    #[test]
    fn super_primary_is_minimum_involved_cluster() {
        let cfg = SystemConfig::uniform(FailureModel::Crash, 4, 1).unwrap();
        let init = cfg
            .initiator_cluster(
                &[ClusterId(2), ClusterId(1), ClusterId(3)],
                Some(ClusterId(3)),
            )
            .unwrap();
        assert_eq!(init, ClusterId(1));

        let cfg = cfg.with_initiation_policy(InitiationPolicy::AnyInvolvedCluster);
        let init = cfg
            .initiator_cluster(&[ClusterId(2), ClusterId(3)], Some(ClusterId(3)))
            .unwrap();
        assert_eq!(init, ClusterId(3));
        // A receiver that is not involved falls back to the minimum cluster.
        let init = cfg
            .initiator_cluster(&[ClusterId(2), ClusterId(3)], Some(ClusterId(0)))
            .unwrap();
        assert_eq!(init, ClusterId(2));
    }

    #[test]
    fn rejects_undersized_and_overlapping_clusters() {
        let err = ClusterConfig::new(
            ClusterId(0),
            vec![NodeId(0), NodeId(1)],
            1,
            FailureModel::Byzantine,
        );
        assert!(err.is_err());

        let a = ClusterConfig::new(
            ClusterId(0),
            vec![NodeId(0), NodeId(1), NodeId(2)],
            1,
            FailureModel::Crash,
        )
        .unwrap();
        let b = ClusterConfig::new(
            ClusterId(1),
            vec![NodeId(2), NodeId(3), NodeId(4)],
            1,
            FailureModel::Crash,
        )
        .unwrap();
        let err = SystemConfig::from_clusters(FailureModel::Crash, vec![a, b], Default::default());
        assert!(err.is_err(), "overlapping membership must be rejected");
    }

    #[test]
    fn grouped_layout_reproduces_paper_example() {
        // §3.4: n = 23 Byzantine nodes, global f = 3 → 2 clusters, but with
        // groups A (7 nodes, f=2) and B (16 nodes, f=1) → 1 + 4 = 5 clusters.
        let global = ClusterLayout::Uniform { clusters: 2, f: 3 };
        assert_eq!(global.cluster_count(FailureModel::Byzantine), 2);
        assert_eq!(global.total_nodes(FailureModel::Byzantine), 20);

        let grouped = ClusterLayout::Grouped {
            groups: vec![
                ClusterGroup {
                    name: "A".into(),
                    nodes: 7,
                    f: 2,
                },
                ClusterGroup {
                    name: "B".into(),
                    nodes: 16,
                    f: 1,
                },
            ],
        };
        assert_eq!(grouped.cluster_count(FailureModel::Byzantine), 5);
        assert_eq!(grouped.total_nodes(FailureModel::Byzantine), 23);

        let cfg = SystemConfig::from_layout(FailureModel::Byzantine, &grouped).unwrap();
        assert_eq!(cfg.cluster_count(), 5);
        assert_eq!(cfg.node_count(), 23);
        // The single group-A cluster has f = 2 → quorum 5; group-B clusters
        // have f = 1 → quorum 3.
        assert_eq!(cfg.quorum(ClusterId(0)).unwrap(), 5);
        assert_eq!(cfg.quorum(ClusterId(1)).unwrap(), 3);
    }

    #[test]
    fn members_of_all_deduplicates_and_sorts() {
        let cfg = SystemConfig::uniform(FailureModel::Crash, 3, 1).unwrap();
        let all = cfg
            .members_of_all(&[ClusterId(1), ClusterId(0), ClusterId(1)])
            .unwrap();
        assert_eq!(all.len(), 6);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn zero_clusters_is_invalid() {
        assert!(SystemConfig::uniform(FailureModel::Crash, 0, 1).is_err());
        assert!(
            SystemConfig::from_clusters(FailureModel::Crash, vec![], Default::default()).is_err()
        );
    }

    #[test]
    fn ledger_config_defaults_to_retain_all() {
        let cfg = LedgerConfig::default();
        assert!(!cfg.is_truncating());
        assert_eq!(cfg, LedgerConfig::retain_all());

        let truncating = LedgerConfig::checkpointed(8, 64);
        assert!(truncating.is_truncating());
        assert_eq!(truncating.checkpoint_interval, 8);
        assert_eq!(truncating.retain_blocks, 64);

        // Nonsensical zeros clamp to the smallest safe truncating config.
        let clamped = LedgerConfig::checkpointed(0, 0);
        assert_eq!(clamped.checkpoint_interval, 1);
        assert_eq!(clamped.retain_blocks, 1);
    }

    #[test]
    fn thread_mode_parses_aliases_and_counts() {
        assert_eq!(
            ThreadMode::parse("sequential").unwrap(),
            ThreadMode::Sequential
        );
        assert_eq!(ThreadMode::parse("seq").unwrap(), ThreadMode::Sequential);
        assert_eq!(
            ThreadMode::parse("per-cluster").unwrap(),
            ThreadMode::PerCluster
        );
        assert_eq!(
            ThreadMode::parse("PerCluster").unwrap(),
            ThreadMode::PerCluster
        );
        // 0 and 1 workers both mean "no parallelism", consistent with
        // Fixed(0 | 1) behaving sequentially in the engine.
        assert_eq!(ThreadMode::parse("0").unwrap(), ThreadMode::Sequential);
        assert_eq!(ThreadMode::parse("1").unwrap(), ThreadMode::Sequential);
        assert_eq!(ThreadMode::parse("4").unwrap(), ThreadMode::Fixed(4));
        assert!(ThreadMode::parse("warp-speed").is_err());
        assert!(!ThreadMode::Sequential.is_parallel());
        assert!(!ThreadMode::Fixed(1).is_parallel());
        assert!(ThreadMode::PerCluster.is_parallel());
        assert!(ThreadMode::Fixed(2).is_parallel());
    }
}
