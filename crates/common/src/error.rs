//! Error type shared across the SharPer workspace.

use crate::ids::{ClusterId, NodeId, TxId};
use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced by configuration, ledger, state and protocol code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The system configuration is inconsistent (wrong cluster sizes,
    /// overlapping membership, ...).
    InvalidConfig(String),
    /// A cluster identifier does not exist in the configuration.
    UnknownCluster(ClusterId),
    /// A node identifier does not exist in the configuration.
    UnknownNode(NodeId),
    /// A transaction failed application-level validation (unknown account,
    /// insufficient balance, wrong owner, ...).
    InvalidTransaction {
        /// The offending transaction.
        tx: TxId,
        /// Why validation failed.
        reason: String,
    },
    /// A block or message failed integrity verification (hash mismatch,
    /// bad signature, wrong parent).
    IntegrityViolation(String),
    /// A ledger audit found a safety violation (fork, inconsistent
    /// cross-shard order, broken hash chain).
    SafetyViolation(String),
    /// A protocol invariant was violated by an incoming message; the message
    /// is dropped (this is expected under Byzantine senders).
    ProtocolViolation(String),
    /// The requested item does not exist.
    NotFound(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::UnknownCluster(c) => write!(f, "unknown cluster {c}"),
            Error::UnknownNode(n) => write!(f, "unknown node {n}"),
            Error::InvalidTransaction { tx, reason } => {
                write!(f, "invalid transaction {tx}: {reason}")
            }
            Error::IntegrityViolation(msg) => write!(f, "integrity violation: {msg}"),
            Error::SafetyViolation(msg) => write!(f, "safety violation: {msg}"),
            Error::ProtocolViolation(msg) => write!(f, "protocol violation: {msg}"),
            Error::NotFound(msg) => write!(f, "not found: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    #[test]
    fn display_is_informative() {
        let e = Error::InvalidConfig("too small".into());
        assert!(e.to_string().contains("too small"));
        let e = Error::UnknownCluster(ClusterId(4));
        assert!(e.to_string().contains("p4"));
        let e = Error::InvalidTransaction {
            tx: TxId::new(ClientId(1), 2),
            reason: "insufficient balance".into(),
        };
        assert!(e.to_string().contains("insufficient balance"));
        assert!(e.to_string().contains("t1.2"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_std_error<E: std::error::Error>(_: E) {}
        takes_std_error(Error::NotFound("x".into()));
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(Error::UnknownNode(NodeId(1)), Error::UnknownNode(NodeId(1)));
        assert_ne!(Error::UnknownNode(NodeId(1)), Error::UnknownNode(NodeId(2)));
    }
}
