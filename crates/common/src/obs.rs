//! The deterministic observability plane: sim-time trace events and the
//! metrics registry.
//!
//! ## Trace events
//!
//! Every instrumented handler records [`TraceKind`]s through its `Context`;
//! the simulation engine stamps each one with the handler's simulated time,
//! the recording actor's stable rank and a per-actor monotonically
//! increasing sequence number, producing a [`TraceEvent`]. The triple
//! `(at, rank, seq)` totally orders the merged trace of a run — the same
//! discipline that keys the event wheel — so traces are **bit-identical
//! across thread modes**: sequential, per-cluster and fixed-pool runs of the
//! same seed serialize to the same byte stream.
//!
//! Three rules keep the plane deterministic and free of observer effects:
//!
//! 1. **Sim time only.** Events carry the simulated clock, never a wall
//!    clock.
//! 2. **Record, never perturb.** Tracing charges no CPU cost, sends no
//!    messages and draws no randomness; enabling it cannot change a run's
//!    results, digests or reports.
//! 3. **Lane-private buffers.** Events are buffered per actor invocation and
//!    appended to the owning lane's private vector; the merge sorts by
//!    `(at, rank, seq)` after the run, so no cross-thread ordering can leak
//!    into the trace.
//!
//! When tracing is disabled (the default) the per-event closure passed to
//! `Context::trace` is never invoked, so disabled runs pay one branch per
//! call site and allocate nothing.
//!
//! ## Metrics
//!
//! [`MetricsRegistry`] aggregates counters, gauges and histograms keyed by
//! `(name, replica, shard, phase)`. It is a post-run analysis structure —
//! deterministic because it is fed from the merged trace, not from live
//! shared state. All percentiles in the workspace go through the single
//! nearest-rank implementation here ([`percentile_nearest_rank`]).

use crate::ids::TxId;
use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// What an instrumented handler observed (the payload of a [`TraceEvent`]).
///
/// Batch and block identities are carried as the first eight bytes of their
/// digest (little-endian `u64`) so the trace stays compact and this crate
/// stays free of crypto dependencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A client submitted a transaction to the responsible primary.
    ClientSubmit {
        /// The submitted transaction.
        tx: TxId,
    },
    /// A client retransmitted a request whose reply quorum timed out.
    ClientRetry {
        /// The retransmitted transaction.
        tx: TxId,
    },
    /// A client collected its reply quorum: the transaction is complete.
    ClientComplete {
        /// The completed transaction.
        tx: TxId,
        /// Whether the transaction spanned more than one cluster.
        cross: bool,
    },
    /// A primary admitted a request into its mempool.
    MempoolAdmit {
        /// The admitted transaction.
        tx: TxId,
        /// Whether it waits in a cross-shard queue.
        cross: bool,
        /// Mempool depth after admission.
        depth: u64,
    },
    /// A primary sealed pending requests into a batch and started consensus.
    BatchSeal {
        /// Short digest of the sealed batch.
        batch: u64,
        /// The member transactions, in batch order.
        txs: Vec<TxId>,
        /// Whether this is a cross-shard batch.
        cross: bool,
    },
    /// An intra-shard proposal went out (Paxos accept / PBFT pre-prepare).
    Propose {
        /// Short digest of the proposed batch.
        batch: u64,
        /// The view the proposal was made in.
        view: u64,
    },
    /// A replica voted for a proposal (Paxos accepted / PBFT prepare).
    Accept {
        /// Short digest of the batch voted for.
        batch: u64,
        /// The view of the vote.
        view: u64,
    },
    /// A replica observed the quorum that commits a batch.
    Commit {
        /// Short digest of the committed batch.
        batch: u64,
    },
    /// A replica appended a block and executed its batch.
    Execute {
        /// Short digest of the appended block.
        block: u64,
        /// Short digest of the executed batch.
        batch: u64,
        /// The executed transactions, in batch order.
        txs: Vec<TxId>,
        /// Whether the block committed a cross-shard batch.
        cross: bool,
    },
    /// A replica replied to the issuing client.
    Reply {
        /// The transaction the reply is for.
        tx: TxId,
        /// Whether the transaction applied (vs. aborting on validation).
        applied: bool,
    },
    /// An initiator started (or retried) a cross-shard round.
    XPropose {
        /// Short digest of the cross-shard batch.
        batch: u64,
        /// Retry attempt (0 for the first transmission).
        attempt: u64,
    },
    /// A remote primary accepted a cross-shard proposal.
    XAccept {
        /// Short digest of the accepted batch.
        batch: u64,
    },
    /// A replica observed the cross-shard commit quorum (initiator side) or
    /// handled the resulting `XCommit` (remote side).
    XCommit {
        /// Short digest of the committed batch.
        batch: u64,
    },
    /// An initiator announced the abort of a cross-shard round.
    XAbortSent {
        /// Short digest of the aborted batch.
        batch: u64,
    },
    /// A replica handled a cross-shard abort announcement.
    XAbortRecv {
        /// Short digest of the aborted batch.
        batch: u64,
    },
    /// A remote primary probed the initiator cluster for a round's fate.
    XStatusProbe {
        /// Short digest of the probed batch.
        batch: u64,
    },
    /// A replica reserved its shard for a cross-shard round.
    ReservationAcquire {
        /// Short digest of the reserving batch.
        batch: u64,
    },
    /// A replica released its shard reservation (commit, abort or timeout).
    ReservationRelease {
        /// Short digest of the batch that held the reservation.
        batch: u64,
    },
    /// A replica voted to replace its primary.
    ViewChangeStart {
        /// The view the replica voted for.
        view: u64,
    },
    /// A replica installed a new view.
    ViewChangeEnd {
        /// The installed view.
        view: u64,
    },
    /// A crash-model replica adopted a higher ballot from a valid proposal.
    BallotAdopt {
        /// The adopted view.
        view: u64,
        /// The proposing node's id.
        proposer: u64,
    },
    /// A protocol-level retransmission (e.g. an `XAbort` re-announcement).
    Retransmit {
        /// Short digest of the batch being retransmitted.
        batch: u64,
    },
    /// The reshard coordinator issued a split/merge directive.
    ReshardDirective {
        /// The shard-map epoch the directive will establish.
        epoch: u64,
        /// First account of the moved range.
        start: u64,
        /// Number of consecutive accounts moved.
        len: u64,
        /// Destination cluster id.
        to: u64,
    },
    /// A replica applied a handover block: the range moved and the replica's
    /// shard map switched to the new epoch.
    ReshardApply {
        /// The epoch installed at apply.
        epoch: u64,
        /// First account of the moved range.
        start: u64,
        /// Number of consecutive accounts moved.
        len: u64,
        /// Source cluster id.
        from: u64,
        /// Destination cluster id.
        to: u64,
    },
    /// The partitioned executor scheduled a committed batch.
    ExecPlan {
        /// Short digest of the executed batch.
        batch: u64,
        /// Partitions with at least one queued step.
        partitions: u64,
        /// Steps claimed across all partition queues.
        steps: u64,
        /// Deepest partition queue of the plan.
        max_queue_depth: u64,
        /// Critical-path length of the schedule, in work units.
        makespan_units: u64,
    },
}

impl TraceKind {
    /// The stable snake_case label of this event kind (used by the JSONL
    /// serialization and by analyzers grouping events by kind).
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::ClientSubmit { .. } => "client_submit",
            TraceKind::ClientRetry { .. } => "client_retry",
            TraceKind::ClientComplete { .. } => "client_complete",
            TraceKind::MempoolAdmit { .. } => "mempool_admit",
            TraceKind::BatchSeal { .. } => "batch_seal",
            TraceKind::Propose { .. } => "propose",
            TraceKind::Accept { .. } => "accept",
            TraceKind::Commit { .. } => "commit",
            TraceKind::Execute { .. } => "execute",
            TraceKind::Reply { .. } => "reply",
            TraceKind::XPropose { .. } => "xpropose",
            TraceKind::XAccept { .. } => "xaccept",
            TraceKind::XCommit { .. } => "xcommit",
            TraceKind::XAbortSent { .. } => "xabort_sent",
            TraceKind::XAbortRecv { .. } => "xabort_recv",
            TraceKind::XStatusProbe { .. } => "xstatus_probe",
            TraceKind::ReservationAcquire { .. } => "reservation_acquire",
            TraceKind::ReservationRelease { .. } => "reservation_release",
            TraceKind::ViewChangeStart { .. } => "view_change_start",
            TraceKind::ViewChangeEnd { .. } => "view_change_end",
            TraceKind::BallotAdopt { .. } => "ballot_adopt",
            TraceKind::Retransmit { .. } => "retransmit",
            TraceKind::ReshardDirective { .. } => "reshard_directive",
            TraceKind::ReshardApply { .. } => "reshard_apply",
            TraceKind::ExecPlan { .. } => "exec_plan",
        }
    }
}

/// One recorded, stamped trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the handler that recorded the event.
    pub at: SimTime,
    /// Stable rank of the recording actor (nodes before clients).
    pub rank: u64,
    /// Per-actor monotonically increasing trace sequence number.
    pub seq: u64,
    /// What was observed.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// The `(at, rank, seq)` ordering key of this event.
    pub fn key(&self) -> (SimTime, u64, u64) {
        (self.at, self.rank, self.seq)
    }
}

fn tx_json(tx: &TxId) -> String {
    format!("\"c{}:{}\"", tx.client.0, tx.seq)
}

fn txs_json(txs: &[TxId]) -> String {
    let mut out = String::from("[");
    for (i, tx) in txs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&tx_json(tx));
    }
    out.push(']');
    out
}

/// Serializes a trace as JSON lines — one event per line, fields in a fixed
/// order, integers only. This is the byte stream the cross-thread-mode
/// determinism gate compares, so the format must stay a pure function of the
/// event sequence.
pub fn trace_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 64);
    for e in events {
        let _ = write!(
            out,
            "{{\"at_us\":{},\"rank\":{},\"seq\":{},\"kind\":\"{}\"",
            e.at.as_micros(),
            e.rank,
            e.seq,
            e.kind.label()
        );
        match &e.kind {
            TraceKind::ClientSubmit { tx } | TraceKind::ClientRetry { tx } => {
                let _ = write!(out, ",\"tx\":{}", tx_json(tx));
            }
            TraceKind::ClientComplete { tx, cross } => {
                let _ = write!(out, ",\"tx\":{},\"cross\":{cross}", tx_json(tx));
            }
            TraceKind::MempoolAdmit { tx, cross, depth } => {
                let _ = write!(
                    out,
                    ",\"tx\":{},\"cross\":{cross},\"depth\":{depth}",
                    tx_json(tx)
                );
            }
            TraceKind::BatchSeal { batch, txs, cross } => {
                let _ = write!(
                    out,
                    ",\"batch\":\"{batch:016x}\",\"cross\":{cross},\"txs\":{}",
                    txs_json(txs)
                );
            }
            TraceKind::Propose { batch, view } | TraceKind::Accept { batch, view } => {
                let _ = write!(out, ",\"batch\":\"{batch:016x}\",\"view\":{view}");
            }
            TraceKind::Commit { batch }
            | TraceKind::XAccept { batch }
            | TraceKind::XCommit { batch }
            | TraceKind::XAbortSent { batch }
            | TraceKind::XAbortRecv { batch }
            | TraceKind::XStatusProbe { batch }
            | TraceKind::ReservationAcquire { batch }
            | TraceKind::ReservationRelease { batch }
            | TraceKind::Retransmit { batch } => {
                let _ = write!(out, ",\"batch\":\"{batch:016x}\"");
            }
            TraceKind::Execute {
                block,
                batch,
                txs,
                cross,
            } => {
                let _ = write!(
                    out,
                    ",\"block\":\"{block:016x}\",\"batch\":\"{batch:016x}\",\"cross\":{cross},\"txs\":{}",
                    txs_json(txs)
                );
            }
            TraceKind::Reply { tx, applied } => {
                let _ = write!(out, ",\"tx\":{},\"applied\":{applied}", tx_json(tx));
            }
            TraceKind::XPropose { batch, attempt } => {
                let _ = write!(out, ",\"batch\":\"{batch:016x}\",\"attempt\":{attempt}");
            }
            TraceKind::ViewChangeStart { view } | TraceKind::ViewChangeEnd { view } => {
                let _ = write!(out, ",\"view\":{view}");
            }
            TraceKind::BallotAdopt { view, proposer } => {
                let _ = write!(out, ",\"view\":{view},\"proposer\":{proposer}");
            }
            TraceKind::ReshardDirective {
                epoch,
                start,
                len,
                to,
            } => {
                let _ = write!(
                    out,
                    ",\"epoch\":{epoch},\"start\":{start},\"len\":{len},\"to\":{to}"
                );
            }
            TraceKind::ReshardApply {
                epoch,
                start,
                len,
                from,
                to,
            } => {
                let _ = write!(
                    out,
                    ",\"epoch\":{epoch},\"start\":{start},\"len\":{len},\"from\":{from},\"to\":{to}"
                );
            }
            TraceKind::ExecPlan {
                batch,
                partitions,
                steps,
                max_queue_depth,
                makespan_units,
            } => {
                let _ = write!(
                    out,
                    ",\"batch\":\"{batch:016x}\",\"partitions\":{partitions},\"steps\":{steps},\
                     \"max_queue_depth\":{max_queue_depth},\"makespan_units\":{makespan_units}"
                );
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Nearest-rank percentile over an already **sorted** slice. Returns `None`
/// when the slice is empty. `pct` is clamped to `[0, 100]`; `pct = 0` yields
/// the minimum, `pct = 100` the maximum. With ties the tied value is
/// returned for every rank it occupies.
///
/// This is the single percentile implementation of the workspace — the
/// mempool wait metrics, the latency summaries and the metrics registry all
/// defer to it.
pub fn percentile_nearest_rank<T: Copy>(sorted: &[T], pct: u64) -> Option<T> {
    if sorted.is_empty() {
        return None;
    }
    let pct = pct.min(100) as usize;
    let rank = (pct * sorted.len()).div_ceil(100).max(1);
    Some(sorted[rank - 1])
}

/// Nearest-rank percentile over sorted microsecond samples, 0 when empty
/// (the historical calling convention of the mempool wait metrics).
pub fn percentile_us(sorted: &[u64], pct: u64) -> u64 {
    percentile_nearest_rank(sorted, pct).unwrap_or(0)
}

/// The identity of one metric: a name plus the optional replica / shard /
/// phase the sample is attributed to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct MetricKey {
    /// Metric name (e.g. `"phase_latency_us"`).
    pub name: String,
    /// Recording replica's rank, if attributed.
    pub replica: Option<u64>,
    /// Shard (cluster) the sample belongs to, if attributed.
    pub shard: Option<u64>,
    /// Lifecycle phase label (e.g. `"consensus"`), if attributed.
    pub phase: Option<String>,
}

impl MetricKey {
    /// A key with only a name.
    pub fn named(name: &str) -> Self {
        Self {
            name: name.to_string(),
            ..Self::default()
        }
    }

    /// Attributes the key to a replica rank (builder style).
    pub fn replica(mut self, rank: u64) -> Self {
        self.replica = Some(rank);
        self
    }

    /// Attributes the key to a shard (builder style).
    pub fn shard(mut self, shard: u64) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Attributes the key to a phase (builder style).
    pub fn phase(mut self, phase: &str) -> Self {
        self.phase = Some(phase.to_string());
        self
    }
}

/// A sample distribution with nearest-rank percentiles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Mean of the samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() as f64 / self.samples.len() as f64
        }
    }

    /// Nearest-rank percentile of the samples, 0 when empty.
    pub fn percentile(&mut self, pct: u64) -> u64 {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        percentile_us(&self.samples, pct)
    }
}

/// Number of sub-buckets per power-of-two group in a [`StreamingHistogram`]
/// (5 significant bits → ≤ ~1.6% relative quantile error).
const STREAM_SUB_BUCKETS: u64 = 32;
/// Total bucket count: values `< 32` are exact, larger values land in one of
/// 59 log₂ groups × 32 sub-buckets. Covers the full `u64` range.
const STREAM_BUCKETS: usize = (STREAM_SUB_BUCKETS as usize) * 60;

/// A bounded-memory histogram with HDR-style log₂ bucketing.
///
/// Unlike [`Histogram`] (which keeps every sample and answers exact
/// percentiles), this structure stores a fixed array of counters — ~15 KB
/// regardless of sample count — so unbounded-duration sweeps stay spill-free.
/// Values below 32 are recorded exactly; larger values keep their top 5
/// significant bits, bounding relative error on percentile reads to ~1.6%.
/// `count`, `sum`, `min` and `max` stay exact.
///
/// Recording and [`merge`](Self::merge) are commutative and associative, so a
/// histogram merged from per-actor shards is independent of merge order —
/// which keeps reports bit-identical across simulator thread modes.
#[derive(Clone)]
pub struct StreamingHistogram {
    buckets: Box<[u64; STREAM_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for StreamingHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamingHistogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl StreamingHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([0u64; STREAM_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index for `value`: the identity below 32, otherwise
    /// `32·(log₂ group − 4) + top-5-sub-bits`.
    fn bucket_index(value: u64) -> usize {
        if value < STREAM_SUB_BUCKETS {
            return value as usize;
        }
        let e = 63 - value.leading_zeros() as u64; // value >= 32 → e >= 5
        let sub = (value >> (e - 5)) & (STREAM_SUB_BUCKETS - 1);
        ((e - 4) * STREAM_SUB_BUCKETS + sub) as usize
    }

    /// The representative value (bucket midpoint) for bucket `i`.
    fn bucket_value(i: usize) -> u64 {
        let i = i as u64;
        if i < STREAM_SUB_BUCKETS {
            return i;
        }
        let group = i / STREAM_SUB_BUCKETS; // >= 1
        let sub = i % STREAM_SUB_BUCKETS;
        let lower = (STREAM_SUB_BUCKETS + sub) << (group - 1);
        let width = 1u64 << (group - 1);
        lower + width / 2
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`. Commutative: merge order never changes any
    /// subsequent read.
    pub fn merge(&mut self, other: &Self) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact (saturating) sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum, 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum, 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate nearest-rank percentile (≤ ~1.6% relative error above 32,
    /// exact below), 0 when empty. Exact `min`/`max` are returned at the
    /// extremes so the reported range never exceeds the observed one.
    pub fn percentile(&self, pct: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let pct = pct.min(100);
        if pct == 0 {
            return self.min();
        }
        if pct == 100 {
            return self.max;
        }
        let rank = (pct as u128 * self.count as u128).div_ceil(100).max(1);
        let mut seen = 0u128;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n as u128;
            if seen >= rank {
                return Self::bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Counters, gauges and histograms keyed by `(name, replica, shard, phase)`.
///
/// Deterministic by construction: it is populated from the merged trace (or
/// from per-actor state inspected after a run), iterates in key order, and
/// owns no interior mutability.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, u64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter at `key`.
    pub fn count(&mut self, key: MetricKey, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    /// The counter at `key`, 0 if never counted.
    pub fn counter(&self, key: &MetricKey) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Raises the gauge at `key` to `value` if it exceeds the current value
    /// (gauges here record deterministic maxima, e.g. peak queue depth).
    pub fn gauge_max(&mut self, key: MetricKey, value: u64) {
        let slot = self.gauges.entry(key).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// The gauge at `key`, 0 if never set.
    pub fn gauge(&self, key: &MetricKey) -> u64 {
        self.gauges.get(key).copied().unwrap_or(0)
    }

    /// Records a histogram sample at `key`.
    pub fn observe(&mut self, key: MetricKey, value: u64) {
        self.histograms.entry(key).or_default().record(value);
    }

    /// Mutable access to the histogram at `key` (creating it if absent).
    pub fn histogram_mut(&mut self, key: MetricKey) -> &mut Histogram {
        self.histograms.entry(key).or_default()
    }

    /// The histogram at `key`, if any samples were recorded.
    pub fn histogram(&self, key: &MetricKey) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Iterates over every histogram in key order.
    pub fn histograms(&mut self) -> impl Iterator<Item = (&MetricKey, &mut Histogram)> {
        self.histograms.iter_mut()
    }

    /// Iterates over every counter in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> {
        self.counters.iter().map(|(k, v)| (k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    #[test]
    fn percentile_empty_is_none_and_zero() {
        assert_eq!(percentile_nearest_rank::<u64>(&[], 50), None);
        assert_eq!(percentile_us(&[], 99), 0);
    }

    #[test]
    fn percentile_single_sample_is_that_sample_at_every_rank() {
        for pct in [0, 1, 50, 99, 100, 250] {
            assert_eq!(percentile_nearest_rank(&[7u64], pct), Some(7));
        }
    }

    #[test]
    fn percentile_nearest_rank_matches_definition() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&samples, 50), 50);
        assert_eq!(percentile_us(&samples, 95), 95);
        assert_eq!(percentile_us(&samples, 99), 99);
        assert_eq!(percentile_us(&samples, 100), 100);
        assert_eq!(percentile_us(&samples, 0), 1, "p0 is the minimum");
    }

    #[test]
    fn percentile_handles_ties() {
        // Five tied samples around the median: every mid-rank hits the tie.
        let samples = [1u64, 5, 5, 5, 5, 5, 9];
        for pct in [30, 50, 70, 85] {
            assert_eq!(percentile_us(&samples, pct), 5);
        }
        assert_eq!(percentile_us(&samples, 100), 9);
        // Works for floats too (shared helper is generic).
        let f = [1.0f64, 2.0, 2.0, 3.0];
        assert_eq!(percentile_nearest_rank(&f, 50), Some(2.0));
    }

    #[test]
    fn trace_events_sort_by_time_then_rank_then_seq() {
        let ev = |at, rank, seq| TraceEvent {
            at: SimTime(at),
            rank,
            seq,
            kind: TraceKind::Commit { batch: 1 },
        };
        let mut events = [ev(5, 1, 0), ev(5, 0, 1), ev(4, 9, 0), ev(5, 0, 0)];
        events.sort_by_key(TraceEvent::key);
        let keys: Vec<(u64, u64, u64)> = events
            .iter()
            .map(|e| (e.at.as_micros(), e.rank, e.seq))
            .collect();
        assert_eq!(keys, vec![(4, 9, 0), (5, 0, 0), (5, 0, 1), (5, 1, 0)]);
    }

    #[test]
    fn jsonl_serialization_is_stable_and_integer_only() {
        let tx = TxId::new(ClientId(3), 7);
        let events = vec![
            TraceEvent {
                at: SimTime(1_000),
                rank: 2,
                seq: 0,
                kind: TraceKind::ClientSubmit { tx },
            },
            TraceEvent {
                at: SimTime(2_000),
                rank: 0,
                seq: 5,
                kind: TraceKind::BatchSeal {
                    batch: 0xAB,
                    txs: vec![tx],
                    cross: true,
                },
            },
        ];
        let jsonl = trace_to_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"at_us\":1000,\"rank\":2,\"seq\":0,\"kind\":\"client_submit\",\"tx\":\"c3:7\"}"
        );
        assert_eq!(
            lines[1],
            "{\"at_us\":2000,\"rank\":0,\"seq\":5,\"kind\":\"batch_seal\",\
             \"batch\":\"00000000000000ab\",\"cross\":true,\"txs\":[\"c3:7\"]}"
        );
        // Serialization is a pure function of the events.
        assert_eq!(jsonl, trace_to_jsonl(&events));
    }

    #[test]
    fn streaming_histogram_is_exact_below_32_and_bounded_above() {
        let mut h = StreamingHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.min(), 0);

        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.sum(), (0..32).sum::<u64>());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        // Values below 32 are stored exactly: nearest-rank percentiles match
        // the exact implementation.
        let sorted: Vec<u64> = (0..32).collect();
        for pct in [1, 25, 50, 75, 99, 100] {
            assert_eq!(h.percentile(pct), percentile_us(&sorted, pct));
        }

        // Large values: relative error stays within one sub-bucket (~3.2%).
        let mut big = StreamingHistogram::new();
        for v in (1_000..101_000u64).step_by(100) {
            big.record(v);
        }
        for pct in [50, 95, 99] {
            let approx = big.percentile(pct) as f64;
            let exact = (1_000.0 + 100_000.0 * pct as f64 / 100.0).min(100_900.0);
            assert!(
                (approx - exact).abs() / exact < 0.04,
                "p{pct}: approx {approx} vs exact {exact}"
            );
        }
        assert_eq!(big.percentile(0), 1_000);
        assert_eq!(big.percentile(100), 100_900);
    }

    #[test]
    fn streaming_histogram_merge_is_order_insensitive() {
        let mut a = StreamingHistogram::new();
        let mut b = StreamingHistogram::new();
        let mut c = StreamingHistogram::new();
        for v in [5u64, 900, 17, 1_000_000, 42] {
            a.record(v);
        }
        for v in [7u64, 7, 123_456] {
            b.record(v);
        }
        c.record(0);

        let mut ab_c = StreamingHistogram::new();
        ab_c.merge(&a);
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut c_b_a = StreamingHistogram::new();
        c_b_a.merge(&c);
        c_b_a.merge(&b);
        c_b_a.merge(&a);

        assert_eq!(ab_c.count(), 9);
        assert_eq!(ab_c.count(), c_b_a.count());
        assert_eq!(ab_c.sum(), c_b_a.sum());
        assert_eq!(ab_c.min(), 0);
        assert_eq!(ab_c.max(), 1_000_000);
        for pct in 0..=100 {
            assert_eq!(ab_c.percentile(pct), c_b_a.percentile(pct));
        }
    }

    #[test]
    fn streaming_histogram_memory_is_independent_of_sample_count() {
        // The whole point: recording a million samples allocates nothing
        // beyond the fixed bucket array (checked structurally — the type has
        // no growable member — and sanity-checked via exact aggregates).
        let mut h = StreamingHistogram::new();
        for i in 0..1_000_000u64 {
            h.record(i % 10_000);
        }
        assert_eq!(h.count(), 1_000_000);
        assert_eq!(h.max(), 9_999);
        assert_eq!(
            std::mem::size_of_val(&h),
            std::mem::size_of::<u64>() * 4 + std::mem::size_of::<usize>()
        );
    }

    #[test]
    fn registry_counts_gauges_and_observes() {
        let mut reg = MetricsRegistry::new();
        let k = MetricKey::named("commits").shard(1);
        reg.count(k.clone(), 2);
        reg.count(k.clone(), 3);
        assert_eq!(reg.counter(&k), 5);
        assert_eq!(reg.counter(&MetricKey::named("missing")), 0);

        let g = MetricKey::named("queue_depth").replica(4);
        reg.gauge_max(g.clone(), 10);
        reg.gauge_max(g.clone(), 7);
        assert_eq!(reg.gauge(&g), 10);

        let h = MetricKey::named("latency_us").phase("consensus");
        for v in [30, 10, 20] {
            reg.observe(h.clone(), v);
        }
        let hist = reg.histogram_mut(h.clone());
        assert_eq!(hist.count(), 3);
        assert_eq!(hist.percentile(50), 20);
        assert_eq!(hist.percentile(100), 30);
        assert!((hist.mean() - 20.0).abs() < 1e-9);
    }
}
