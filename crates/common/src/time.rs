//! Simulated time.
//!
//! The discrete-event simulator in `sharper-net` advances a logical clock
//! measured in microseconds. All protocol timers and latency/cost models are
//! expressed in this unit so that experiments are fully deterministic and do
//! not depend on the wall clock of the machine running them.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in microseconds since the start of the
/// simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, measured in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Constructs a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// The raw microsecond value.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This time expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference between two points in time.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Constructs a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Constructs a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Constructs a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// The raw microsecond value.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This duration expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the duration by a scalar, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_millis(2), SimTime::from_micros(2_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_micros(1_000_000));
        assert_eq!(Duration::from_millis(3), Duration::from_micros(3_000));
        assert_eq!(Duration::from_secs(2), Duration::from_micros(2_000_000));
    }

    #[test]
    fn arithmetic_is_saturating() {
        let t = SimTime(u64::MAX - 1);
        assert_eq!((t + Duration(10)).0, u64::MAX);
        assert_eq!((SimTime(5) - SimTime(10)).0, 0);
        assert_eq!(SimTime(10).saturating_since(SimTime(50)), Duration::ZERO);
        assert_eq!(Duration(u64::MAX).saturating_mul(3).0, u64::MAX);
    }

    #[test]
    fn add_and_subtract_round_trip() {
        let start = SimTime::from_millis(10);
        let later = start + Duration::from_millis(5);
        assert_eq!(later - start, Duration::from_millis(5));
        assert_eq!(later.saturating_since(start), Duration::from_millis(5));
    }

    #[test]
    fn float_conversions() {
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
        assert!((Duration::from_micros(2500).as_millis_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn display_uses_milliseconds() {
        assert_eq!(SimTime::from_micros(1234).to_string(), "1.234ms");
        assert_eq!(Duration::from_micros(500).to_string(), "0.500ms");
    }

    #[test]
    fn ordering_matches_numeric_value() {
        assert!(SimTime(1) < SimTime(2));
        assert!(Duration(10) > Duration(9));
        let mut t = SimTime::ZERO;
        t += Duration::from_micros(7);
        assert_eq!(t, SimTime(7));
    }
}
