//! # sharper-common
//!
//! Shared vocabulary types for the SharPer reproduction: identifiers for nodes,
//! clusters, clients and transactions, the system configuration (how nodes are
//! partitioned into clusters and which failure model they follow), simulated
//! time, and the calibrated latency/CPU cost model used by the discrete-event
//! simulator.
//!
//! The types in this crate are deliberately small, `Copy` where possible, and
//! free of any protocol logic so that every other crate in the workspace can
//! depend on them without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod error;
pub mod ids;
pub mod obs;
pub mod time;

pub use config::{
    BatchConfig, ClusterConfig, ClusterGroup, ClusterLayout, ExecutorConfig, FailureModel,
    ForcedMove, InitiationPolicy, LedgerConfig, ReshardConfig, SimConfig, SystemConfig, ThreadMode,
};
pub use cost::{CostModel, LatencyModel, LinkKind};
pub use error::{Error, Result};
pub use ids::{AccountId, ClientId, ClusterId, NodeId, RequestId, TxId};
pub use obs::{
    percentile_nearest_rank, percentile_us, trace_to_jsonl, Histogram, MetricKey, MetricsRegistry,
    StreamingHistogram, TraceEvent, TraceKind,
};
pub use time::{Duration, SimTime};
