//! Strongly typed identifiers used throughout the SharPer reproduction.
//!
//! The paper (§2.1–§2.2) identifies three kinds of participants: replicas
//! (nodes), clusters (shards) and clients. Transactions and client requests
//! also carry identifiers so that replicas can detect duplicates and clients
//! can match replies to requests.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a replica (a node participating in consensus).
///
/// Node identifiers are globally unique across the whole network, not just
/// within a cluster; the [`crate::SystemConfig`] records which cluster each
/// node belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a cluster. Because SharPer assigns exactly one data shard to
/// each cluster (§2.2), the same identifier doubles as the shard identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// Returns the raw index of this cluster.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a client of the accounting application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of an account in the account-based data model (§2.4).
///
/// The partitioner in `sharper-state` maps accounts to shards; see
/// [`crate::SystemConfig`] for the number of shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AccountId(pub u64);

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Globally unique identifier of a transaction.
///
/// Transaction identifiers are assigned by clients (client id + client-local
/// sequence number) so that replicas can deduplicate retransmissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxId {
    /// The client that issued the transaction.
    pub client: ClientId,
    /// The client-local sequence number (the paper's timestamp `τc`).
    pub seq: u64,
}

impl TxId {
    /// Creates a transaction identifier.
    pub fn new(client: ClientId, seq: u64) -> Self {
        Self { client, seq }
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.client.0, self.seq)
    }
}

/// Identifier of a client request as seen by the protocol layer.
///
/// For SharPer this is identical to the transaction id, but baseline systems
/// that batch or re-sequence requests also use it as an opaque handle.
pub type RequestId = TxId;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(ClusterId(0).to_string(), "p0");
        assert_eq!(ClientId(7).to_string(), "c7");
        assert_eq!(AccountId(42).to_string(), "a42");
        assert_eq!(TxId::new(ClientId(2), 9).to_string(), "t2.9");
    }

    #[test]
    fn node_id_ordering_and_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(5).index(), 5);
        assert_eq!(ClusterId(2).index(), 2);
    }

    #[test]
    fn tx_ids_are_unique_per_client_sequence() {
        let mut set = HashSet::new();
        for c in 0..4u64 {
            for s in 0..16u64 {
                assert!(set.insert(TxId::new(ClientId(c), s)));
            }
        }
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn tx_id_ordering_is_client_then_sequence() {
        let a = TxId::new(ClientId(1), 100);
        let b = TxId::new(ClientId(2), 1);
        assert!(a < b);
        let c = TxId::new(ClientId(1), 101);
        assert!(a < c);
    }

    #[test]
    fn ids_are_copy_and_hashable() {
        fn assert_copy_hash<T: Copy + std::hash::Hash + Eq>() {}
        assert_copy_hash::<NodeId>();
        assert_copy_hash::<ClusterId>();
        assert_copy_hash::<ClientId>();
        assert_copy_hash::<AccountId>();
        assert_copy_hash::<TxId>();
    }
}
